package obs

import (
	"sync"
	"sync/atomic"
)

// Wire tracing: the flight recorder taken onto the real UDP data plane.
//
// Where the simulator's Recorder lives in virtual time and is fed by the
// engine's deterministic hooks, the wire recorder captures per-frame
// lifecycle events from internal/transport's Sender and Receiver — two
// endpoints with two clocks, possibly in two processes on two hosts. Each
// endpoint records into its own fixed-capacity ring; the merge layer
// (MergeWire) later joins the two streams by (FlowID, Seq), estimates the
// clock offset from the ack stream's RTT echo, and decomposes every
// sampled packet's end-to-end latency into exact per-stage attribution.
//
// Sampling policy (the three layers that make the recorder tail-usable at
// line rate with bounded memory):
//
//  1. Deterministic flow-seq hash sampling. Both endpoints apply the same
//     predicate WireSampled(flow, seq) — a function of the packet's
//     identity alone — so the sender and receiver always capture the SAME
//     packets and every sampled packet can be merged end to end. No
//     coordination, no trace-context header bytes on the wire.
//  2. A recency ring. The recorder keeps the most recent capacity events
//     and overwrites the oldest, crash-recorder style: the tail of a run
//     is always available at bounded memory.
//  3. Slowest-K selection at merge time. The merge layer ranks timelines
//     by end-to-end latency, so reports and Chrome exports lead with the
//     tail — the packets the paper says the last mile is about.
//
// Ack events are never flow-sampled: they are the clock-offset signal and
// cost one event per cumulative ack, not per packet.
type WireRecorder struct {
	mu      sync.Mutex
	end     WireEnd
	buf     []WireEvent
	next    int    // ring write cursor
	n       int    // live entries (≤ cap)
	emitted uint64 // total events ever emitted

	// mask is the sample-rate mask (rate rounded up to a power of two,
	// minus one). Atomic so the tail sentinel can ramp capture to full the
	// instant an episode starts without pausing the emitters — Sampled
	// stays a single load on the hot path.
	mask atomic.Uint64
}

// WireEnd identifies which endpoint of the wire recorded an event.
type WireEnd uint8

const (
	// WireSender events carry sender-clock timestamps.
	WireSender WireEnd = iota
	// WireReceiver events carry receiver-clock timestamps.
	WireReceiver

	numWireEnds // sentinel: keep last
)

// NumWireEnds is the number of defined endpoints (decoder bound).
const NumWireEnds = int(numWireEnds)

func (e WireEnd) String() string {
	switch e {
	case WireSender:
		return "sender"
	case WireReceiver:
		return "receiver"
	default:
		return "end(?)"
	}
}

// WireKind identifies a wire-path lifecycle event.
type WireKind uint8

const (
	// WireEnqueue: the sender accepted an application packet. Nanos is the
	// accept time — also the SendNanos stamped into every wire copy's
	// header, so the receiver can reconstruct it without sender events.
	// A is the payload length in bytes.
	WireEnqueue WireKind = iota
	// WireSched: the path scheduler's verdict for the packet. Path is the
	// primary pick, A the number of wire copies (canary included), B the
	// WireSched* verdict bits (deadline/dup decisions, canary, fallback).
	WireSched
	// WireTx: one wire copy left the socket. Path and PathSeq name the
	// copy; Nanos is post-write, A holds the frame flags. Emitted even for
	// frames an impairer will drop or delay — the sender cannot know.
	WireTx
	// WireAckTx: the receiver sent a cumulative ack on a path. A is the
	// total distinct frames received, B the high-water path seq.
	WireAckTx
	// WireAckRx: the sender folded a cumulative ack into path accounting.
	// A is the RTT sample in nanoseconds (0 = the ack carried no fresh
	// echo), B the newly conclusive loss count.
	WireAckRx
	// WireRx: a data frame arrived (fresh or duplicate). Path and PathSeq
	// name the copy, A echoes the header's SendNanos (sender clock), B
	// holds the frame flags.
	WireRx
	// WireDedup: a copy was discarded before the reorder stage. A is 1 for
	// a wire-level duplicate (same PathSeq twice on one path), 0 for a
	// hedged sibling (first copy of (flow, seq) already admitted).
	WireDedup
	// WireDeliver: the packet was released in order to the application.
	// Emitted after the deliver callback returns: Path and PathSeq name
	// the admitted copy, A is its arrival time, B the release time before
	// the callback ran. ReorderWait = B−A, Deliver = Nanos−B.
	WireDeliver
	// WireLost: the packet's sequence was abandoned by a reorder gap
	// timeout and a straggler copy arrived too late to matter.
	WireLost

	numWireKinds // sentinel: keep last
)

// NumWireKinds is the number of defined wire event kinds (decoder bound).
const NumWireKinds = int(numWireKinds)

func (k WireKind) String() string {
	switch k {
	case WireEnqueue:
		return "enqueue"
	case WireSched:
		return "sched"
	case WireTx:
		return "tx"
	case WireAckTx:
		return "ack-tx"
	case WireAckRx:
		return "ack-rx"
	case WireRx:
		return "rx"
	case WireDedup:
		return "dedup-drop"
	case WireDeliver:
		return "deliver"
	case WireLost:
		return "lost"
	default:
		return "kind(?)"
	}
}

// WireSched verdict bits (the B argument of a WireSched event).
const (
	// WireSchedCanary: a canary copy onto a probing path rode along.
	WireSchedCanary int64 = 1 << 0
	// WireSchedAtRisk: the deadline scheduler judged the packet's budget
	// at risk on even the best path.
	WireSchedAtRisk int64 = 1 << 1
	// WireSchedDup: the deadline scheduler granted a protective duplicate.
	WireSchedDup int64 = 1 << 2
	// WireSchedDenied: duplication was wanted but withheld (no second
	// path, or the duplication-bytes budget refused the spend).
	WireSchedDenied int64 = 1 << 3
	// WireSchedFallback: no path was health-eligible; the scheduler
	// ignored health to keep traffic (and the watchdogs) flowing.
	WireSchedFallback int64 = 1 << 4
)

// WireEvent is one wire flight-recorder entry. The fixed shape (no
// pointers, no strings) keeps recording allocation-free and the binary
// codec trivial — the same discipline as the simulator's Event.
type WireEvent struct {
	// Nanos is the recording endpoint's monotone unix-nanosecond clock.
	// Sender and receiver clocks are NOT the same clock: the merge layer
	// estimates their offset before comparing across endpoints.
	Nanos int64
	Kind  WireKind
	End   WireEnd

	// Path is the wire path involved, -1 when not applicable.
	Path int32

	// Packet identity: the per-flow sequence is the cross-endpoint join
	// key, the per-path sequence names one wire copy. Zero for path-scoped
	// events (acks).
	FlowID  uint64
	Seq     uint64
	PathSeq uint64

	// A and B are kind-specific arguments (see the WireKind doc comments).
	A, B int64
}

// DefaultWireRecorderCap is the default ring capacity (events).
const DefaultWireRecorderCap = 1 << 16

// NewWireRecorder builds a recorder for one endpoint holding the last
// capacity events (DefaultWireRecorderCap when ≤ 0) and sampling roughly
// one in sampleEvery packets (rounded up to a power of two; ≤ 1 samples
// every packet). Safe for concurrent emitters: the sender's ack readers
// and the receiver's per-path read loops all share one ring.
func NewWireRecorder(end WireEnd, capacity, sampleEvery int) *WireRecorder {
	if capacity <= 0 {
		capacity = DefaultWireRecorderCap
	}
	r := &WireRecorder{end: end, buf: make([]WireEvent, capacity)}
	r.mask.Store(sampleMask(sampleEvery))
	return r
}

// sampleMask converts a sample-every rate into the hash mask Sampled
// tests against: the rate rounds up to a power of two, ≤ 1 means every
// packet.
func sampleMask(sampleEvery int) uint64 {
	rate := uint64(1)
	for int(rate) < sampleEvery {
		rate <<= 1
	}
	return rate - 1
}

// End returns the endpoint this recorder records for.
func (r *WireRecorder) End() WireEnd { return r.end }

// SampleEvery returns the effective sampling rate (a power of two).
func (r *WireRecorder) SampleEvery() int { return int(r.mask.Load() + 1) }

// SetSampleEvery atomically retunes the sampling rate (rounded up to a
// power of two; ≤ 1 samples every packet) and returns the previous
// effective rate. This is the sampling-ramp hook: the tail sentinel calls
// it on both endpoints' recorders when an episode starts (ramp to full)
// and ends (restore). Emitters racing the store see either rate — both
// are valid samples, and the deterministic (flow, seq) predicate means
// the two endpoints still agree on every packet captured under the
// common rate.
func (r *WireRecorder) SetSampleEvery(sampleEvery int) int {
	return int(r.mask.Swap(sampleMask(sampleEvery)) + 1)
}

// wireSampleMix is a splitmix64-style finalizer over the packet identity:
// cheap, stateless, and identical on both endpoints, so the sender and
// receiver always sample the same packets.
func wireSampleMix(flow, seq uint64) uint64 {
	x := flow*0x9e3779b97f4a7c15 + seq
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampled reports whether the packet (flow, seq) is in the sample. Pure
// arithmetic on the identity: no state, no lock, no allocation.
//
//mpdp:hotpath bench=BenchmarkWireSampled
func (r *WireRecorder) Sampled(flow, seq uint64) bool {
	return wireSampleMix(flow, seq)&r.mask.Load() == 0
}

// Emit records one event, stamping the recorder's endpoint. The ring
// write is allocation-free: one struct copy into the preallocated buffer
// under a short mutex hold (emitters are concurrent goroutines — path
// readers, the reorder driver, ack readers).
//
//mpdp:hotpath bench=BenchmarkWireRecorderEmit
func (r *WireRecorder) Emit(ev WireEvent) {
	ev.End = r.end
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.emitted++
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *WireRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Emitted returns the total number of events ever emitted at the ring.
func (r *WireRecorder) Emitted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.emitted
}

// Overwritten returns how many events the ring has already discarded.
func (r *WireRecorder) Overwritten() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.emitted - uint64(r.n)
}

// Events returns the held events, oldest first (a copy; the ring keeps
// recording).
func (r *WireRecorder) Events() []WireEvent {
	evs, _ := r.SnapshotSince(0)
	return evs
}

// SnapshotSince returns the still-held events whose emit index (0-based,
// monotone over the recorder's life) is ≥ since, oldest first, along with
// the current emit count — the mark to pass next time. The pair makes the
// ring a crash-recorder with an incremental read API: the tail sentinel
// snapshots the pre-trigger history with SnapshotSince(0) at episode
// start, then fetches exactly the episode's own events at the end with
// SnapshotSince(mark), and the two slices never overlap.
func (r *WireRecorder) SnapshotSince(since uint64) ([]WireEvent, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.emitted - uint64(r.n) // emit index of the oldest held event
	skip := uint64(0)
	if since > oldest {
		skip = since - oldest
	}
	count := r.n
	if skip >= uint64(r.n) {
		count = 0
	} else {
		count = r.n - int(skip)
	}
	out := make([]WireEvent, 0, count)
	start := r.next - count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out, r.emitted
}
