package obs

import (
	"testing"
)

func TestWireRecorderRing(t *testing.T) {
	r := NewWireRecorder(WireReceiver, 8, 1)
	for i := 0; i < 20; i++ {
		r.Emit(WireEvent{Nanos: int64(i), Kind: WireRx, Seq: uint64(i)})
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := r.Emitted(); got != 20 {
		t.Fatalf("Emitted = %d, want 20", got)
	}
	if got := r.Overwritten(); got != 12 {
		t.Fatalf("Overwritten = %d, want 12", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("Events len = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		want := uint64(12 + i) // oldest survivor first
		if ev.Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
		if ev.End != WireReceiver {
			t.Errorf("event %d: end %v, want receiver (Emit must stamp)", i, ev.End)
		}
	}
}

func TestWireRecorderDefaults(t *testing.T) {
	r := NewWireRecorder(WireSender, 0, 0)
	if got := len(r.buf); got != DefaultWireRecorderCap {
		t.Fatalf("default capacity %d, want %d", got, DefaultWireRecorderCap)
	}
	if got := r.SampleEvery(); got != 1 {
		t.Fatalf("SampleEvery = %d, want 1 (≤1 samples everything)", got)
	}
	if r.End() != WireSender {
		t.Fatalf("End = %v, want sender", r.End())
	}
}

func TestWireSampleRateRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {100, 128},
	} {
		r := NewWireRecorder(WireSender, 4, tc.in)
		if got := r.SampleEvery(); got != tc.want {
			t.Errorf("sampleEvery %d: got %d, want %d", tc.in, got, tc.want)
		}
	}
}

// The whole cross-endpoint join depends on both endpoints sampling the
// same packets: the predicate must be a pure function of (flow, seq),
// independent of the recorder's endpoint or history.
func TestWireSampledCrossEndpointAgreement(t *testing.T) {
	snd := NewWireRecorder(WireSender, 4, 64)
	rcv := NewWireRecorder(WireReceiver, 4, 64)
	sampled := 0
	const n = 1 << 14
	for flow := uint64(1); flow <= 4; flow++ {
		for seq := uint64(0); seq < n/4; seq++ {
			s := snd.Sampled(flow, seq)
			if r := rcv.Sampled(flow, seq); r != s {
				t.Fatalf("flow %d seq %d: sender=%v receiver=%v", flow, seq, s, r)
			}
			if s {
				sampled++
			}
		}
	}
	// ~1/64 of n, generously bounded: the hash should not collapse.
	if sampled < n/256 || sampled > n/16 {
		t.Fatalf("sampled %d of %d at rate 1/64 — hash is degenerate", sampled, n)
	}
}

func TestWireSampledEveryPacketAtRateOne(t *testing.T) {
	r := NewWireRecorder(WireSender, 4, 1)
	for seq := uint64(0); seq < 1000; seq++ {
		if !r.Sampled(9, seq) {
			t.Fatalf("rate 1 must sample everything; seq %d missed", seq)
		}
	}
}

// The sampling-ramp hook: the sentinel swaps the rate to 1 on episode
// start and restores it afterwards, and the change must be visible to
// the Sampled predicate immediately.
func TestWireSetSampleEveryRamps(t *testing.T) {
	r := NewWireRecorder(WireSender, 4, 64)
	missed := false
	for seq := uint64(0); seq < 1000; seq++ {
		if !r.Sampled(3, seq) {
			missed = true
			break
		}
	}
	if !missed {
		t.Fatal("rate 64 sampled everything — ramp test would be vacuous")
	}
	if prev := r.SetSampleEvery(1); prev != 64 {
		t.Fatalf("SetSampleEvery returned prev %d, want 64", prev)
	}
	for seq := uint64(0); seq < 1000; seq++ {
		if !r.Sampled(3, seq) {
			t.Fatalf("after ramp to 1, seq %d missed", seq)
		}
	}
	if prev := r.SetSampleEvery(100); prev != 1 {
		t.Fatalf("restore returned prev %d, want 1", prev)
	}
	if got := r.SampleEvery(); got != 128 {
		t.Fatalf("restored rate %d, want 128 (rounded up)", got)
	}
}

func TestWireSnapshotSince(t *testing.T) {
	r := NewWireRecorder(WireSender, 64, 1)
	for i := 0; i < 10; i++ {
		r.Emit(WireEvent{Nanos: int64(i), Kind: WireTx, Seq: uint64(i)})
	}
	pre, mark := r.SnapshotSince(0)
	if len(pre) != 10 || mark != 10 {
		t.Fatalf("SnapshotSince(0) = %d events, mark %d; want 10, 10", len(pre), mark)
	}
	for i := 5; i < 10; i++ {
		r.Emit(WireEvent{Nanos: int64(100 + i), Kind: WireRx, Seq: uint64(i)})
	}
	during, mark2 := r.SnapshotSince(mark)
	if len(during) != 5 || mark2 != 15 {
		t.Fatalf("SnapshotSince(%d) = %d events, mark %d; want 5, 15", mark, len(during), mark2)
	}
	if during[0].Nanos != 105 || during[4].Nanos != 109 {
		t.Fatalf("episode slice wrong: first %d last %d", during[0].Nanos, during[4].Nanos)
	}
	// Nothing new since the latest mark.
	if evs, _ := r.SnapshotSince(mark2); len(evs) != 0 {
		t.Fatalf("SnapshotSince(latest mark) = %d events, want 0", len(evs))
	}
}

// When the ring has overwritten events older than the mark, the snapshot
// degrades gracefully to whatever is still held.
func TestWireSnapshotSinceAfterOverwrite(t *testing.T) {
	r := NewWireRecorder(WireSender, 8, 1)
	for i := 0; i < 20; i++ {
		r.Emit(WireEvent{Nanos: int64(i), Seq: uint64(i)})
	}
	evs, mark := r.SnapshotSince(0)
	if len(evs) != 8 || mark != 20 {
		t.Fatalf("after overflow: %d events, mark %d; want 8, 20", len(evs), mark)
	}
	if evs[0].Seq != 12 || evs[7].Seq != 19 {
		t.Fatalf("held window [%d..%d], want [12..19]", evs[0].Seq, evs[7].Seq)
	}
	// A mark inside the held window trims exactly.
	evs, _ = r.SnapshotSince(15)
	if len(evs) != 5 || evs[0].Seq != 15 {
		t.Fatalf("SnapshotSince(15) = %d events starting at %d; want 5 from 15", len(evs), evs[0].Seq)
	}
	// A mark beyond the emit count yields nothing.
	if evs, _ := r.SnapshotSince(99); len(evs) != 0 {
		t.Fatalf("SnapshotSince(99) = %d events, want 0", len(evs))
	}
}

func TestWireKindAndEndStrings(t *testing.T) {
	for k := 0; k < NumWireKinds; k++ {
		if s := WireKind(k).String(); s == "kind(?)" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if WireKind(200).String() != "kind(?)" {
		t.Error("undefined kind should render as kind(?)")
	}
	for e := 0; e < NumWireEnds; e++ {
		if s := WireEnd(e).String(); s == "end(?)" || s == "" {
			t.Errorf("end %d has no name", e)
		}
	}
}

// Capture hot paths: one event emit and one sampling decision, both on
// the gate list (bench/hotpath_gates.txt) requiring 0 allocs/op.

func BenchmarkWireRecorderEmit(b *testing.B) {
	r := NewWireRecorder(WireSender, 1<<12, 1)
	ev := WireEvent{Nanos: 12345, Kind: WireTx, Path: 1, FlowID: 7, Seq: 42, PathSeq: 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(ev)
	}
}

func BenchmarkWireSampled(b *testing.B) {
	r := NewWireRecorder(WireSender, 4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Sampled(7, uint64(i)) {
			n++
		}
	}
	_ = n
}
