package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export for merged wire timelines. Unlike the
// exemplar export (one thread per exemplar), the wire export uses one
// lane per UDP path — so hedged copies of one packet appear side by side
// on the paths that carried them, and a path-level burst shows up as a
// visible band of stretched flight slices on that lane. Two extra lanes
// carry the endpoint-local stages: "sender" (queue slices) and
// "receiver" (reorder-wait and deliver slices).
//
// All timestamps are receiver-clock microseconds: sender-clock events are
// shifted by the merge's estimated offset so slices line up across lanes.

// WriteWireChromeTrace renders the k slowest merged timelines (k ≤ 0 =
// all) as a Chrome trace-event JSON document.
func WriteWireChromeTrace(w io.Writer, m *WireMerge, k int) error {
	tls := m.Timelines
	if k > 0 && k < len(tls) {
		tls = tls[:k]
	}
	tr := chromeTrace{
		DisplayTimeUnit: "ns",
		Metadata: map[string]string{
			"source":       "mpdp wire trace",
			"clock_offset": fmt.Sprintf("%dns", m.OffsetNanos),
			"min_rtt":      fmt.Sprintf("%dns", m.MinRTT),
		},
	}

	// Lane layout: tid 1..N for the paths (in path order), then sender and
	// receiver lanes. Collect the paths actually present first.
	pathTid := make(map[int32]int)
	var paths []int32
	for _, tl := range tls {
		for _, c := range tl.Copies {
			if _, ok := pathTid[c.Path]; !ok && c.Path >= 0 {
				pathTid[c.Path] = 0
				paths = append(paths, c.Path)
			}
		}
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i] < paths[j] })
	for i, p := range paths {
		pathTid[p] = i + 1
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i + 1,
			Args: map[string]any{"name": fmt.Sprintf("path %d", p)},
		})
	}
	senderTid := len(paths) + 1
	receiverTid := len(paths) + 2
	tr.TraceEvents = append(tr.TraceEvents,
		chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: senderTid,
			Args: map[string]any{"name": "sender"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: receiverTid,
			Args: map[string]any{"name": "receiver"}},
	)

	off := float64(m.OffsetNanos) / nsPerUs
	for _, tl := range tls {
		id := fmt.Sprintf("f%x s%d", tl.FlowID, tl.Seq)
		args := map[string]any{
			"flow": tl.FlowID, "seq": tl.Seq,
			"e2e_ns": tl.E2E, "verdict": tl.SchedVerdict,
		}
		if tl.EnqNanos != 0 && tl.Attr.SenderQueue > 0 {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "queue " + id, Ph: "X",
				Ts:  float64(tl.EnqNanos)/nsPerUs + off,
				Dur: float64(tl.Attr.SenderQueue) / nsPerUs,
				Pid: 0, Tid: senderTid, Args: args,
			})
		}
		for _, c := range tl.Copies {
			tid, ok := pathTid[c.Path]
			if !ok {
				continue
			}
			switch {
			case c.TxNanos != 0 && c.RxNanos != 0:
				ts := float64(c.TxNanos)/nsPerUs + off
				dur := float64(c.RxNanos)/nsPerUs - ts
				if dur < 0 {
					dur = 0
				}
				name := "flight " + id
				if c.Deduped {
					name = "flight (deduped) " + id
				}
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: 0, Tid: tid,
					Args: map[string]any{
						"flow": tl.FlowID, "seq": tl.Seq, "path_seq": c.PathSeq,
						"admitted": c.Admitted, "flags": c.Flags,
					},
				})
			case c.TxNanos != 0:
				// Sent but never arrived (dropped, or the trace was cut).
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "tx (no rx) " + id, Ph: "i",
					Ts:  float64(c.TxNanos)/nsPerUs + off,
					Pid: 0, Tid: tid, S: "t",
					Args: map[string]any{"flow": tl.FlowID, "seq": tl.Seq, "path_seq": c.PathSeq},
				})
			case c.RxNanos != 0:
				// Arrived with no captured tx (sender ring overwrote it).
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "rx " + id, Ph: "i",
					Ts:  float64(c.RxNanos) / nsPerUs,
					Pid: 0, Tid: tid, S: "t",
					Args: map[string]any{"flow": tl.FlowID, "seq": tl.Seq, "path_seq": c.PathSeq},
				})
			}
		}
		if tl.DeliverNanos != 0 && tl.EnqNanos != 0 {
			release := tl.DeliverNanos - tl.Attr.Deliver
			admRx := release - tl.Attr.ReorderWait
			if tl.Attr.ReorderWait > 0 {
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "reorder " + id, Ph: "X",
					Ts:  float64(admRx) / nsPerUs,
					Dur: float64(tl.Attr.ReorderWait) / nsPerUs,
					Pid: 0, Tid: receiverTid, Args: args,
				})
			}
			if tl.Attr.Deliver > 0 {
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "deliver " + id, Ph: "X",
					Ts:  float64(release) / nsPerUs,
					Dur: float64(tl.Attr.Deliver) / nsPerUs,
					Pid: 0, Tid: receiverTid, Args: args,
				})
			}
		}
		if tl.Lost {
			ts := float64(tl.EnqNanos)/nsPerUs + off
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "lost " + id, Ph: "i", Ts: ts, Pid: 0, Tid: receiverTid, S: "t",
				Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(tr)
}
