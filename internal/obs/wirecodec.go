package obs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// Binary wire-event-stream format (little endian), the MPDPOBS1 sibling
// for wire traces:
//
//	header:  8-byte magic "MPDPWIR1"
//	record:  int64 nanos | uint8 kind | uint8 end | uint32 path |
//	         uint64 flow_id | uint64 seq | uint64 path_seq |
//	         int64 a | int64 b
//
// Records are fixed-size (54 bytes) and ring-ordered. Unlike MPDPOBS1,
// timestamps are NOT required to be monotone: one file may interleave two
// endpoints' clocks (the gateway writes the sender stream then the
// receiver stream), and within one endpoint concurrent emitters may
// serialize slightly out of timestamp order. Everything else the OBS
// codec enforces — magic, kind and endpoint bounds, path ≥ -1, no
// negative timestamps, truncation detected — holds here too, and the
// decoder is fuzzed to never panic on arbitrary input.

// MagicWIR identifies a wire event stream.
var MagicWIR = [8]byte{'M', 'P', 'D', 'P', 'W', 'I', 'R', '1'}

// wireRecordSize is the encoded size of one wire event.
const wireRecordSize = 8 + 1 + 1 + 4 + 8 + 8 + 8 + 8 + 8

// Errors returned by the wire codec.
var (
	ErrWireBadMagic = errors.New("obs: bad magic (not an MPDP wire event stream)")
	ErrWireCorrupt  = errors.New("obs: corrupt wire record")
)

// WireWriter streams wire events to w.
type WireWriter struct {
	w *bufio.Writer
	n uint64
	b uint64
}

// NewWireWriter writes the header and returns a WireWriter. Call Flush
// when done.
func NewWireWriter(w io.Writer) (*WireWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(MagicWIR[:]); err != nil {
		return nil, err
	}
	return &WireWriter{w: bw, b: uint64(len(MagicWIR))}, nil
}

// Write appends one event. The kind and endpoint must be defined, the
// path ≥ -1, the timestamp non-negative — the same invariants the reader
// enforces, so a stream this writer produced always reads back.
func (ww *WireWriter) Write(ev WireEvent) error {
	if int(ev.Kind) >= NumWireKinds || int(ev.End) >= NumWireEnds {
		return ErrWireCorrupt
	}
	if ev.Nanos < 0 || ev.Path < -1 {
		return ErrWireCorrupt
	}
	var rec [wireRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(ev.Nanos))
	rec[8] = byte(ev.Kind)
	rec[9] = byte(ev.End)
	binary.LittleEndian.PutUint32(rec[10:14], uint32(ev.Path))
	binary.LittleEndian.PutUint64(rec[14:22], ev.FlowID)
	binary.LittleEndian.PutUint64(rec[22:30], ev.Seq)
	binary.LittleEndian.PutUint64(rec[30:38], ev.PathSeq)
	binary.LittleEndian.PutUint64(rec[38:46], uint64(ev.A))
	binary.LittleEndian.PutUint64(rec[46:54], uint64(ev.B))
	if _, err := ww.w.Write(rec[:]); err != nil {
		return err
	}
	ww.n++
	ww.b += wireRecordSize
	return nil
}

// Count returns the number of events written.
func (ww *WireWriter) Count() uint64 { return ww.n }

// BytesWritten returns the encoded size so far (header included).
func (ww *WireWriter) BytesWritten() int64 { return int64(ww.b) }

// Flush flushes buffered records to the underlying writer.
func (ww *WireWriter) Flush() error { return ww.w.Flush() }

// WireReader streams wire events from r.
type WireReader struct {
	r *bufio.Reader
	n uint64
}

// NewWireReader validates the header and returns a WireReader.
func NewWireReader(r io.Reader) (*WireReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrWireBadMagic
	}
	if magic != MagicWIR {
		return nil, ErrWireBadMagic
	}
	return &WireReader{r: br}, nil
}

// Next returns the next event, or io.EOF at a clean end of stream. A
// partial trailing record is reported as ErrWireCorrupt, never as
// success.
func (wr *WireReader) Next() (WireEvent, error) {
	var rec [wireRecordSize]byte
	if _, err := io.ReadFull(wr.r, rec[:]); err != nil {
		if err == io.EOF {
			return WireEvent{}, io.EOF
		}
		return WireEvent{}, ErrWireCorrupt
	}
	ev := WireEvent{
		Nanos:   int64(binary.LittleEndian.Uint64(rec[0:8])),
		Kind:    WireKind(rec[8]),
		End:     WireEnd(rec[9]),
		Path:    int32(binary.LittleEndian.Uint32(rec[10:14])),
		FlowID:  binary.LittleEndian.Uint64(rec[14:22]),
		Seq:     binary.LittleEndian.Uint64(rec[22:30]),
		PathSeq: binary.LittleEndian.Uint64(rec[30:38]),
		A:       int64(binary.LittleEndian.Uint64(rec[38:46])),
		B:       int64(binary.LittleEndian.Uint64(rec[46:54])),
	}
	if int(ev.Kind) >= NumWireKinds || int(ev.End) >= NumWireEnds {
		return WireEvent{}, ErrWireCorrupt
	}
	if ev.Nanos < 0 || ev.Path < -1 {
		return WireEvent{}, ErrWireCorrupt
	}
	wr.n++
	return ev, nil
}

// Count returns the number of events read so far.
func (wr *WireReader) Count() uint64 { return wr.n }

// ReadAllWire drains a wire stream into memory.
func ReadAllWire(r io.Reader) ([]WireEvent, error) {
	wr, err := NewWireReader(r)
	if err != nil {
		return nil, err
	}
	var out []WireEvent
	for {
		ev, err := wr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// WriteAllWire encodes events to w in one call (header + records +
// flush). The gateway uses it to concatenate the sender and receiver
// rings into one merged trace file.
func WriteAllWire(w io.Writer, events []WireEvent) error {
	ww, err := NewWireWriter(w)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := ww.Write(ev); err != nil {
			return err
		}
	}
	return ww.Flush()
}
