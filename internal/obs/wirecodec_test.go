package obs

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateWireGolden = flag.Bool("update-wire-golden", false, "rewrite testdata/wire_golden.wir")

func sampleWireEvents() []WireEvent {
	return []WireEvent{
		{Nanos: 1000, Kind: WireEnqueue, End: WireSender, Path: -1, FlowID: 7, Seq: 0, A: 256},
		{Nanos: 1001, Kind: WireSched, End: WireSender, Path: 0, FlowID: 7, Seq: 0, A: 2, B: WireSchedAtRisk | WireSchedDup},
		{Nanos: 1100, Kind: WireTx, End: WireSender, Path: 0, FlowID: 7, Seq: 0, PathSeq: 5},
		{Nanos: 1120, Kind: WireTx, End: WireSender, Path: 1, FlowID: 7, Seq: 0, PathSeq: 3, A: 1},
		// Receiver-clock events interleave an unrelated clock: smaller
		// timestamps after larger ones are legal in a wire stream.
		{Nanos: 400, Kind: WireRx, End: WireReceiver, Path: 0, FlowID: 7, Seq: 0, PathSeq: 5, A: 1000},
		{Nanos: 410, Kind: WireDedup, End: WireReceiver, Path: 1, FlowID: 7, Seq: 0, PathSeq: 3},
		{Nanos: 450, Kind: WireDeliver, End: WireReceiver, Path: 0, FlowID: 7, Seq: 0, PathSeq: 5, A: 400, B: 440},
		{Nanos: 500, Kind: WireAckTx, End: WireReceiver, Path: 0, A: 1, B: 5},
		{Nanos: 1300, Kind: WireAckRx, End: WireSender, Path: 0, A: 200},
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	in := sampleWireEvents()
	var buf bytes.Buffer
	if err := WriteAllWire(&buf, in); err != nil {
		t.Fatalf("WriteAllWire: %v", err)
	}
	wantLen := len(MagicWIR) + len(in)*wireRecordSize
	if buf.Len() != wantLen {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), wantLen)
	}
	out, err := ReadAllWire(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAllWire: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestWireCodecBadMagic(t *testing.T) {
	if _, err := ReadAllWire(bytes.NewReader([]byte("NOTMAGIC???"))); !errors.Is(err, ErrWireBadMagic) {
		t.Fatalf("got %v, want ErrWireBadMagic", err)
	}
	if _, err := ReadAllWire(bytes.NewReader(nil)); !errors.Is(err, ErrWireBadMagic) {
		t.Fatalf("empty stream: got %v, want ErrWireBadMagic", err)
	}
	// The MPDPOBS1 magic is a different format, not a wire stream.
	if _, err := ReadAllWire(bytes.NewReader(MagicOBS[:])); !errors.Is(err, ErrWireBadMagic) {
		t.Fatalf("obs stream: got %v, want ErrWireBadMagic", err)
	}
}

func TestWireCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllWire(&buf, sampleWireEvents()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7]
	if _, err := ReadAllWire(bytes.NewReader(cut)); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("truncated stream: got %v, want ErrWireCorrupt", err)
	}
	evs, err := ReadAllWire(bytes.NewReader(MagicWIR[:]))
	if err != nil || len(evs) != 0 {
		t.Fatalf("header-only stream: got %d events, err %v", len(evs), err)
	}
}

func TestWireWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWireWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for name, ev := range map[string]WireEvent{
		"undefined kind": {Kind: WireKind(NumWireKinds)},
		"undefined end":  {Kind: WireRx, End: WireEnd(NumWireEnds)},
		"negative nanos": {Kind: WireRx, Nanos: -1},
		"bad path":       {Kind: WireRx, Path: -2},
	} {
		if err := w.Write(ev); !errors.Is(err, ErrWireCorrupt) {
			t.Errorf("%s: got %v, want ErrWireCorrupt", name, err)
		}
	}
	if w.Count() != 0 {
		t.Fatalf("rejected writes counted: %d", w.Count())
	}
}

// Wire streams deliberately have NO monotone-time invariant: two endpoint
// clocks interleave, and concurrent emitters serialize out of order.
func TestWireCodecTimeRegressionIsLegal(t *testing.T) {
	in := []WireEvent{
		{Nanos: 5000, Kind: WireTx, End: WireSender},
		{Nanos: 10, Kind: WireRx, End: WireReceiver},
	}
	var buf bytes.Buffer
	if err := WriteAllWire(&buf, in); err != nil {
		t.Fatalf("WriteAllWire: %v", err)
	}
	out, err := ReadAllWire(&buf)
	if err != nil || len(out) != 2 {
		t.Fatalf("got %d events, err %v", len(out), err)
	}
}

func TestWireWriterAccounting(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWireWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sampleWireEvents() {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Count(), uint64(len(sampleWireEvents())); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if got := w.BytesWritten(); got != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer holds %d", got, buf.Len())
	}
}

// The golden stream pins the on-disk format: if the encoding shifts, this
// test fails until the format version (and the magic) is bumped.
func TestWireCodecGolden(t *testing.T) {
	golden := filepath.Join("testdata", "wire_golden.wir")
	var buf bytes.Buffer
	if err := WriteAllWire(&buf, sampleWireEvents()); err != nil {
		t.Fatal(err)
	}
	if *updateWireGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-wire-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoding changed: %d bytes vs golden %d — bump MPDPWIR version if intentional",
			buf.Len(), len(want))
	}
	evs, err := ReadAllWire(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if len(evs) != len(sampleWireEvents()) {
		t.Fatalf("golden decodes to %d events, want %d", len(evs), len(sampleWireEvents()))
	}
}
