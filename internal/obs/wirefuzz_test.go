package obs

import (
	"bytes"
	"testing"
)

// FuzzWireReader: arbitrary bytes must never panic the decoder
// (mpdp-inspect -wire reads user-supplied files), every accepted event
// must satisfy the format invariants, and any stream that decodes cleanly
// must re-encode byte-identically — the codec has no lossy or ambiguous
// representations.
func FuzzWireReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteAllWire(&buf, sampleWireEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(MagicWIR[:])
	f.Add(MagicOBS[:]) // the sibling format's magic must be rejected
	f.Add([]byte("garbage"))
	f.Add(append(append([]byte{}, MagicWIR[:]...), make([]byte, wireRecordSize/2)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadAllWire(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, ev := range evs {
			if int(ev.Kind) >= NumWireKinds {
				t.Fatalf("undefined kind %d accepted", ev.Kind)
			}
			if int(ev.End) >= NumWireEnds {
				t.Fatalf("undefined end %d accepted", ev.End)
			}
			if ev.Nanos < 0 {
				t.Fatal("negative timestamp accepted")
			}
			if ev.Path < -1 {
				t.Fatalf("invalid path %d accepted", ev.Path)
			}
		}
		var out bytes.Buffer
		if err := WriteAllWire(&out, evs); err != nil {
			t.Fatalf("accepted events fail to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("round trip not byte-identical: %d in, %d out", len(data), out.Len())
		}
		// The merge layer must also survive any decodable stream.
		m := MergeWire(evs)
		if m == nil {
			t.Fatal("MergeWire returned nil")
		}
	})
}
