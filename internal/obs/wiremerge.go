package obs

import (
	"sort"

	"mpdp/internal/stats"
)

// Merge layer: join the sender and receiver wire-event streams into
// per-packet timelines with exact cross-endpoint latency attribution.
//
// The two endpoints timestamp with two different clocks. The merge
// estimates their offset (receiver clock minus sender clock) from signals
// the transport already carries — no extra wire bytes:
//
//   - Every data frame's header carries SendNanos (sender clock); the
//     receiver's rx event records both its own arrival clock and that
//     echo, so each matched copy yields gap = rx − tx = offset + one-way.
//   - Every cumulative ack echoes the newest data frame's SendNanos back
//     to the sender, which records the round trip rtt = now − echo. The
//     minimum RTT bounds the fastest one-way at minRTT/2 under the usual
//     symmetric-path assumption.
//
// offset ≈ min(gap) − minRTT/2: the copy with the smallest gap traveled
// the fastest observed one-way, estimated as half the fastest round trip.
// Offset error moves latency between the Propagation stage and nothing
// else — the attribution identity below holds for ANY offset value.
//
// Exact attribution. For a delivered packet let enq be the sender-clock
// accept time, tx the sender-clock transmit time of the copy the receiver
// admitted, rx that copy's receiver-clock arrival, rel the receiver-clock
// in-order release, and done the receiver-clock post-callback time. Then
//
//	SenderQueue = tx − enq                 (sender clock)
//	Propagation = (rx − offset) − tx       (cross-clock, offset-corrected)
//	ReorderWait = rel − rx                 (receiver clock)
//	Deliver     = done − rel               (receiver clock)
//	E2E         = (done − offset) − enq
//
// and the four stages telescope: their sum equals E2E exactly, every
// nanosecond between accept and delivery assigned to precisely one stage
// (asserted per packet by the loopback test in internal/transport).

// WireAttr is one delivered packet's exact stage decomposition, all in
// nanoseconds.
type WireAttr struct {
	SenderQueue int64 `json:"sender_queue_ns"` // accept → admitted copy's tx
	Propagation int64 `json:"propagation_ns"`  // tx → rx, offset-corrected
	ReorderWait int64 `json:"reorder_wait_ns"` // rx → in-order release
	Deliver     int64 `json:"deliver_ns"`      // deliver callback
}

// Total returns the components' sum — by construction the packet's
// offset-corrected end-to-end latency.
func (a WireAttr) Total() int64 {
	return a.SenderQueue + a.Propagation + a.ReorderWait + a.Deliver
}

// WireCopy is one wire copy of a packet: where it was sent and whether —
// and when — it arrived.
type WireCopy struct {
	Path     int32  `json:"path"`
	PathSeq  uint64 `json:"path_seq"`
	TxNanos  int64  `json:"tx_ns,omitempty"` // sender clock; 0 = tx event not captured
	RxNanos  int64  `json:"rx_ns,omitempty"` // receiver clock; 0 = never arrived
	Flags    int64  `json:"flags,omitempty"`
	Admitted bool   `json:"admitted,omitempty"` // this copy won first-copy-wins dedup
	Deduped  bool   `json:"deduped,omitempty"`  // discarded (wire dup or hedged sibling)
}

// WireTimeline is one sampled packet's merged lifecycle across both
// endpoints.
type WireTimeline struct {
	FlowID uint64 `json:"flow_id"`
	Seq    uint64 `json:"seq"`

	EnqNanos     int64 `json:"enq_ns"`            // sender clock (0 = not captured)
	SchedCopies  int64 `json:"sched_copies"`      // scheduler's copy count
	SchedVerdict int64 `json:"sched_verdict"`     // WireSched* bits
	DeliverNanos int64 `json:"deliver_ns"`        // receiver clock, post-callback
	Lost         bool  `json:"lost,omitempty"`    // abandoned by a gap timeout
	Complete     bool  `json:"complete"`          // every attribution boundary captured
	E2E          int64 `json:"e2e_ns,omitempty"`  // offset-corrected end to end
	PayloadLen   int64 `json:"payload,omitempty"` // bytes (from the enqueue event)

	Copies []WireCopy `json:"copies"`
	Attr   WireAttr   `json:"attr"`
}

// WirePathStats aggregates one path's merged view.
type WirePathStats struct {
	Path     int32 `json:"path"`
	Tx       int   `json:"tx"`      // copies transmitted
	Rx       int   `json:"rx"`      // copies that arrived
	Wins     int   `json:"wins"`    // copies that won dedup and delivered
	Deduped  int   `json:"deduped"` // copies discarded as duplicates
	PropSum  int64 `json:"-"`       // offset-corrected propagation sum over matched copies
	PropMax  int64 `json:"prop_max_ns"`
	PropN    int   `json:"-"`
	PropMean int64 `json:"prop_mean_ns"`
}

// WireStage names one attribution stage of the merged report.
type WireStage struct {
	Stage   string        `json:"stage"`
	Latency stats.Summary `json:"latency_ns"`
}

// WireMerge is the joined view of a sender and a receiver stream.
type WireMerge struct {
	// Timelines holds every sampled packet, slowest first (by E2E, then
	// flow/seq for determinism). Lost and incomplete timelines sort last.
	Timelines []WireTimeline

	// OffsetNanos is the estimated receiver-minus-sender clock offset.
	OffsetNanos int64
	// MinRTT is the smallest ack-echoed round trip observed (0 = none).
	MinRTT int64
	// RTTSamples counts acks that carried a fresh RTT echo.
	RTTSamples int

	SenderEvents   int
	ReceiverEvents int
	Delivered      int
	Lost           int
	Incomplete     int // delivered but missing a boundary (ring overwrote it)

	// Stages summarizes the four attribution stages plus e2e over every
	// complete delivered timeline.
	Stages []WireStage
	// Paths is the per-path table, path order.
	Paths []WirePathStats
}

// timelineKey joins the two streams.
type timelineKey struct {
	flow uint64
	seq  uint64
}

// MergeWire joins wire events from both endpoints (any order; the End
// field routes each event) into per-packet timelines, estimates the clock
// offset, and computes exact attribution for every complete delivered
// packet.
func MergeWire(events []WireEvent) *WireMerge {
	m := &WireMerge{}
	type build struct {
		tl        WireTimeline
		releaseAt int64 // WireDeliver B: pre-callback release time
		rxAdm     int64 // WireDeliver A: admitted copy's arrival time
		admPath   int32
		admSeq    uint64 // admitted copy's per-path wire seq
	}
	packets := make(map[timelineKey]*build)
	order := make([]timelineKey, 0, 64) // deterministic output: first-seen order
	get := func(flow, seq uint64) *build {
		k := timelineKey{flow, seq}
		b, ok := packets[k]
		if !ok {
			b = &build{tl: WireTimeline{FlowID: flow, Seq: seq}}
			b.admPath = -1
			packets[k] = b
			order = append(order, k)
		}
		return b
	}
	copyAt := func(b *build, path int32, pathSeq uint64) *WireCopy {
		for i := range b.tl.Copies {
			c := &b.tl.Copies[i]
			if c.Path == path && c.PathSeq == pathSeq {
				return c
			}
		}
		b.tl.Copies = append(b.tl.Copies, WireCopy{Path: path, PathSeq: pathSeq})
		return &b.tl.Copies[len(b.tl.Copies)-1]
	}

	minRTT := int64(0)
	for _, ev := range events {
		if ev.End == WireSender {
			m.SenderEvents++
		} else {
			m.ReceiverEvents++
		}
		switch ev.Kind {
		case WireEnqueue:
			b := get(ev.FlowID, ev.Seq)
			b.tl.EnqNanos = ev.Nanos
			b.tl.PayloadLen = ev.A
		case WireSched:
			b := get(ev.FlowID, ev.Seq)
			b.tl.SchedCopies = ev.A
			b.tl.SchedVerdict = ev.B
		case WireTx:
			c := copyAt(get(ev.FlowID, ev.Seq), ev.Path, ev.PathSeq)
			c.TxNanos = ev.Nanos
			c.Flags = ev.A
		case WireRx:
			b := get(ev.FlowID, ev.Seq)
			c := copyAt(b, ev.Path, ev.PathSeq)
			c.RxNanos = ev.Nanos
			c.Flags = ev.B
			// The header echo reconstructs the accept time even when the
			// sender stream is absent or its ring overwrote the enqueue.
			if b.tl.EnqNanos == 0 && ev.A > 0 {
				b.tl.EnqNanos = ev.A
			}
		case WireDedup:
			c := copyAt(get(ev.FlowID, ev.Seq), ev.Path, ev.PathSeq)
			c.Deduped = true
		case WireDeliver:
			b := get(ev.FlowID, ev.Seq)
			b.tl.DeliverNanos = ev.Nanos
			b.rxAdm = ev.A
			b.releaseAt = ev.B
			b.admPath = ev.Path
			b.admSeq = ev.PathSeq
			// The deliver event names the admitted copy exactly: reuse (or
			// create) its entry so a single-ended trace still shows it.
			if c := copyAt(b, ev.Path, ev.PathSeq); c.RxNanos == 0 {
				c.RxNanos = ev.A
			}
		case WireLost:
			get(ev.FlowID, ev.Seq).tl.Lost = true
		case WireAckRx:
			if ev.A > 0 && (minRTT == 0 || ev.A < minRTT) {
				minRTT = ev.A
			}
			m.RTTSamples++
		}
	}
	m.MinRTT = minRTT

	// Clock offset: the fastest matched copy's gap minus half the fastest
	// round trip. With no matched copies the offset stays 0 (single-ended
	// streams still render, attribution just lives in one clock).
	minGap, haveGap := int64(0), false
	for _, k := range order {
		for _, c := range packets[k].tl.Copies {
			if c.TxNanos == 0 || c.RxNanos == 0 {
				continue
			}
			gap := c.RxNanos - c.TxNanos
			if !haveGap || gap < minGap {
				minGap, haveGap = gap, true
			}
		}
	}
	if haveGap {
		m.OffsetNanos = minGap - minRTT/2
	}

	// Finalize: attribution per delivered packet, per-path aggregation.
	pathIdx := make(map[int32]int)
	var pathOrder []int32
	pstat := func(p int32) *WirePathStats {
		i, ok := pathIdx[p]
		if !ok {
			i = len(m.Paths)
			pathIdx[p] = i
			m.Paths = append(m.Paths, WirePathStats{Path: p})
			pathOrder = append(pathOrder, p)
		}
		return &m.Paths[i]
	}
	var senderQ, prop, reorder, deliver, e2e []int64
	for _, k := range order {
		b := packets[k]
		tl := &b.tl
		for i := range tl.Copies {
			c := &tl.Copies[i]
			ps := pstat(c.Path)
			if c.TxNanos != 0 {
				ps.Tx++
			}
			if c.RxNanos != 0 {
				ps.Rx++
			}
			if c.Deduped {
				ps.Deduped++
			}
			if c.TxNanos != 0 && c.RxNanos != 0 {
				p := (c.RxNanos - m.OffsetNanos) - c.TxNanos
				ps.PropSum += p
				ps.PropN++
				if p > ps.PropMax {
					ps.PropMax = p
				}
			}
		}
		if tl.Lost && tl.DeliverNanos == 0 {
			m.Lost++
			continue
		}
		if tl.DeliverNanos == 0 {
			continue // still in flight when the trace was cut
		}
		m.Delivered++
		// The admitted copy, named by the deliver event's (path, pathSeq);
		// the WireDeliver case above guaranteed its entry exists.
		var adm *WireCopy
		for i := range tl.Copies {
			c := &tl.Copies[i]
			if c.Path == b.admPath && c.PathSeq == b.admSeq {
				adm = c
				break
			}
		}
		adm.Admitted = true
		if b.admPath >= 0 {
			pstat(b.admPath).Wins++
		}
		tl.Complete = tl.EnqNanos != 0 && adm.TxNanos != 0 && b.rxAdm != 0 && b.releaseAt != 0
		// Degrade gracefully on truncated timelines: a missing tx collapses
		// SenderQueue into Propagation, so the identity still holds.
		tx := adm.TxNanos
		if tx == 0 {
			tx = tl.EnqNanos
		}
		if tl.EnqNanos == 0 {
			continue // no sender-side anchor at all: nothing to attribute
		}
		tl.Attr = WireAttr{
			SenderQueue: tx - tl.EnqNanos,
			Propagation: (b.rxAdm - m.OffsetNanos) - tx,
			ReorderWait: b.releaseAt - b.rxAdm,
			Deliver:     tl.DeliverNanos - b.releaseAt,
		}
		tl.E2E = (tl.DeliverNanos - m.OffsetNanos) - tl.EnqNanos
		if tl.Complete {
			senderQ = append(senderQ, tl.Attr.SenderQueue)
			prop = append(prop, tl.Attr.Propagation)
			reorder = append(reorder, tl.Attr.ReorderWait)
			deliver = append(deliver, tl.Attr.Deliver)
			e2e = append(e2e, tl.E2E)
		} else {
			m.Incomplete++
		}
	}
	for i := range m.Paths {
		if m.Paths[i].PropN > 0 {
			m.Paths[i].PropMean = m.Paths[i].PropSum / int64(m.Paths[i].PropN)
		}
	}
	sort.Slice(m.Paths, func(i, j int) bool { return m.Paths[i].Path < m.Paths[j].Path })
	m.Stages = []WireStage{
		{Stage: "sender_queue", Latency: summarizeNanos(senderQ)},
		{Stage: "propagation", Latency: summarizeNanos(prop)},
		{Stage: "reorder_wait", Latency: summarizeNanos(reorder)},
		{Stage: "deliver", Latency: summarizeNanos(deliver)},
		{Stage: "e2e", Latency: summarizeNanos(e2e)},
	}

	// Slowest first: the tail is the point. Lost/unattributed timelines
	// (E2E 0) sort last; ties break on identity for determinism.
	m.Timelines = make([]WireTimeline, 0, len(order))
	for _, k := range order {
		tl := packets[k].tl
		// Copy order must not depend on event arrival order (the gateway
		// concatenates rings; inspect may see any interleaving).
		sort.Slice(tl.Copies, func(i, j int) bool {
			if tl.Copies[i].Path != tl.Copies[j].Path {
				return tl.Copies[i].Path < tl.Copies[j].Path
			}
			return tl.Copies[i].PathSeq < tl.Copies[j].PathSeq
		})
		m.Timelines = append(m.Timelines, tl)
	}
	sort.Slice(m.Timelines, func(i, j int) bool {
		a, b := &m.Timelines[i], &m.Timelines[j]
		if a.E2E != b.E2E {
			return a.E2E > b.E2E
		}
		if a.FlowID != b.FlowID {
			return a.FlowID < b.FlowID
		}
		return a.Seq < b.Seq
	})
	return m
}

// Slowest returns the k slowest attributed timelines.
func (m *WireMerge) Slowest(k int) []WireTimeline {
	if k > len(m.Timelines) {
		k = len(m.Timelines)
	}
	return m.Timelines[:k]
}

// summarizeNanos computes the repo's standard tail summary over a sample
// set (exact order statistics — the merge is offline, so no sketching).
func summarizeNanos(vs []int64) stats.Summary {
	var s stats.Summary
	s.Count = uint64(len(vs))
	if len(vs) == 0 {
		return s
	}
	sorted := make([]int64, len(vs))
	copy(sorted, vs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	q := func(p float64) int64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.Mean = float64(sum) / float64(len(sorted))
	s.Min = sorted[0]
	s.P50 = q(0.50)
	s.P90 = q(0.90)
	s.P95 = q(0.95)
	s.P99 = q(0.99)
	s.P999 = q(0.999)
	s.Max = sorted[len(sorted)-1]
	return s
}
