package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// mergeScenario builds a two-copy hedged packet with exactly known truth:
// true clock offset 5000ns, path 0 one-way 100ns (the fast path — equal
// to half the 200ns RTT, so the offset estimate recovers 5000 exactly),
// path 1 one-way 350ns (deduped sibling).
//
// Sender clock:   enq 1000, tx0 1100, tx1 1120, ack-rx rtt 200
// Receiver clock: rx0 6200, rx1 6470, release 6240, done 6250
func mergeScenario() []WireEvent {
	return []WireEvent{
		{Nanos: 1000, Kind: WireEnqueue, End: WireSender, Path: -1, FlowID: 7, Seq: 1, A: 256},
		{Nanos: 1001, Kind: WireSched, End: WireSender, Path: 0, FlowID: 7, Seq: 1, A: 2, B: WireSchedAtRisk | WireSchedDup},
		{Nanos: 1100, Kind: WireTx, End: WireSender, Path: 0, FlowID: 7, Seq: 1, PathSeq: 5},
		{Nanos: 1120, Kind: WireTx, End: WireSender, Path: 1, FlowID: 7, Seq: 1, PathSeq: 3, A: 1},
		{Nanos: 6200, Kind: WireRx, End: WireReceiver, Path: 0, FlowID: 7, Seq: 1, PathSeq: 5, A: 1000},
		{Nanos: 6470, Kind: WireRx, End: WireReceiver, Path: 1, FlowID: 7, Seq: 1, PathSeq: 3, A: 1000, B: 1},
		{Nanos: 6471, Kind: WireDedup, End: WireReceiver, Path: 1, FlowID: 7, Seq: 1, PathSeq: 3},
		{Nanos: 6250, Kind: WireDeliver, End: WireReceiver, Path: 0, FlowID: 7, Seq: 1, PathSeq: 5, A: 6200, B: 6240},
		{Nanos: 1300, Kind: WireAckRx, End: WireSender, Path: 0, A: 200},
	}
}

func TestMergeWireOffsetAndAttribution(t *testing.T) {
	m := MergeWire(mergeScenario())
	if m.OffsetNanos != 5000 {
		t.Fatalf("offset = %d, want 5000 (minGap 5100 − minRTT/2 100)", m.OffsetNanos)
	}
	if m.MinRTT != 200 || m.RTTSamples != 1 {
		t.Fatalf("minRTT %d (%d samples), want 200 (1)", m.MinRTT, m.RTTSamples)
	}
	if m.Delivered != 1 || m.Lost != 0 || m.Incomplete != 0 {
		t.Fatalf("delivered/lost/incomplete = %d/%d/%d, want 1/0/0",
			m.Delivered, m.Lost, m.Incomplete)
	}
	tl := m.Timelines[0]
	if !tl.Complete {
		t.Fatal("timeline with every boundary captured must be Complete")
	}
	want := WireAttr{SenderQueue: 100, Propagation: 100, ReorderWait: 40, Deliver: 10}
	if tl.Attr != want {
		t.Fatalf("attr = %+v, want %+v", tl.Attr, want)
	}
	if tl.E2E != 250 {
		t.Fatalf("e2e = %d, want 250", tl.E2E)
	}
	if got := tl.Attr.Total(); got != tl.E2E {
		t.Fatalf("attribution sum %d != e2e %d — the identity is exact by construction", got, tl.E2E)
	}
	if tl.SchedCopies != 2 || tl.SchedVerdict != (WireSchedAtRisk|WireSchedDup) {
		t.Fatalf("sched copies %d verdict %d", tl.SchedCopies, tl.SchedVerdict)
	}
	if len(tl.Copies) != 2 {
		t.Fatalf("copies = %d, want 2", len(tl.Copies))
	}
	for _, c := range tl.Copies {
		switch c.Path {
		case 0:
			if !c.Admitted || c.Deduped {
				t.Errorf("path 0 copy: admitted=%v deduped=%v, want winner", c.Admitted, c.Deduped)
			}
		case 1:
			if c.Admitted || !c.Deduped {
				t.Errorf("path 1 copy: admitted=%v deduped=%v, want deduped sibling", c.Admitted, c.Deduped)
			}
		default:
			t.Errorf("unexpected copy on path %d", c.Path)
		}
	}
}

func TestMergeWirePathTable(t *testing.T) {
	m := MergeWire(mergeScenario())
	if len(m.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(m.Paths))
	}
	p0, p1 := m.Paths[0], m.Paths[1]
	if p0.Path != 0 || p1.Path != 1 {
		t.Fatalf("path order %d,%d — want ascending", p0.Path, p1.Path)
	}
	if p0.Tx != 1 || p0.Rx != 1 || p0.Wins != 1 || p0.Deduped != 0 {
		t.Fatalf("path 0 stats %+v", p0)
	}
	if p0.PropMean != 100 || p0.PropMax != 100 {
		t.Fatalf("path 0 prop mean/max = %d/%d, want 100/100", p0.PropMean, p0.PropMax)
	}
	if p1.Wins != 0 || p1.Deduped != 1 || p1.PropMean != 350 {
		t.Fatalf("path 1 stats %+v", p1)
	}
}

// The identity Attr.Total() == E2E must hold for ANY offset estimate —
// offset error moves time between Propagation and nothing else. Drop the
// ack events so the estimator degrades to offset = minGap (5100, 100ns
// wrong) and verify the sum still telescopes.
func TestMergeWireIdentityHoldsWithoutRTT(t *testing.T) {
	var evs []WireEvent
	for _, ev := range mergeScenario() {
		if ev.Kind != WireAckRx {
			evs = append(evs, ev)
		}
	}
	m := MergeWire(evs)
	if m.OffsetNanos != 5100 {
		t.Fatalf("offset = %d, want minGap 5100 with no RTT samples", m.OffsetNanos)
	}
	tl := m.Timelines[0]
	if tl.Attr.Propagation != 0 {
		t.Fatalf("propagation = %d, want 0 (offset absorbed the one-way)", tl.Attr.Propagation)
	}
	if got := tl.Attr.Total(); got != tl.E2E {
		t.Fatalf("attribution sum %d != e2e %d", got, tl.E2E)
	}
}

// A receiver-only trace (single-ended capture, or the sender ring was
// lost) still attributes: the rx event's SendNanos echo reconstructs the
// accept time, the missing tx collapses SenderQueue into Propagation, and
// the timeline is marked incomplete.
func TestMergeWireReceiverOnly(t *testing.T) {
	var evs []WireEvent
	for _, ev := range mergeScenario() {
		if ev.End == WireReceiver {
			evs = append(evs, ev)
		}
	}
	m := MergeWire(evs)
	if m.SenderEvents != 0 || m.ReceiverEvents != 4 {
		t.Fatalf("events %d/%d", m.SenderEvents, m.ReceiverEvents)
	}
	if m.Delivered != 1 || m.Incomplete != 1 {
		t.Fatalf("delivered/incomplete = %d/%d, want 1/1", m.Delivered, m.Incomplete)
	}
	tl := m.Timelines[0]
	if tl.Complete {
		t.Fatal("timeline without tx must not be Complete")
	}
	if tl.EnqNanos != 1000 {
		t.Fatalf("enq = %d, want 1000 reconstructed from the SendNanos echo", tl.EnqNanos)
	}
	if tl.Attr.SenderQueue != 0 {
		t.Fatalf("sender queue = %d, want 0 (collapsed into propagation)", tl.Attr.SenderQueue)
	}
	if got := tl.Attr.Total(); got != tl.E2E {
		t.Fatalf("attribution sum %d != e2e %d", got, tl.E2E)
	}
}

func TestMergeWireLost(t *testing.T) {
	evs := []WireEvent{
		{Nanos: 1000, Kind: WireEnqueue, End: WireSender, Path: -1, FlowID: 3, Seq: 9, A: 64},
		{Nanos: 1050, Kind: WireTx, End: WireSender, Path: 0, FlowID: 3, Seq: 9, PathSeq: 1},
		{Nanos: 8000, Kind: WireLost, End: WireReceiver, Path: -1, FlowID: 3, Seq: 9},
	}
	m := MergeWire(evs)
	if m.Delivered != 0 || m.Lost != 1 {
		t.Fatalf("delivered/lost = %d/%d, want 0/1", m.Delivered, m.Lost)
	}
	if !m.Timelines[0].Lost {
		t.Fatal("timeline not marked lost")
	}
}

func TestMergeWireSlowestOrdering(t *testing.T) {
	var evs []WireEvent
	// Three packets, e2e 300 / 100 / 200 (offset 0: no tx/rx pairs).
	for i, e2e := range []int64{300, 100, 200} {
		seq := uint64(i)
		evs = append(evs,
			WireEvent{Nanos: 1000, Kind: WireRx, End: WireReceiver, Path: 0, FlowID: 1, Seq: seq, PathSeq: seq, A: 1000},
			WireEvent{Nanos: 1000 + e2e, Kind: WireDeliver, End: WireReceiver, Path: 0, FlowID: 1, Seq: seq, PathSeq: seq, A: 1000, B: 1000 + e2e},
		)
	}
	m := MergeWire(evs)
	got := []int64{m.Timelines[0].E2E, m.Timelines[1].E2E, m.Timelines[2].E2E}
	want := []int64{300, 200, 100}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("slowest-first order %v, want %v", got, want)
	}
	if s := m.Slowest(2); len(s) != 2 || s[0].E2E != 300 {
		t.Fatalf("Slowest(2) = %+v", s)
	}
	if s := m.Slowest(99); len(s) != 3 {
		t.Fatalf("Slowest over-ask returned %d", len(s))
	}
}

// Merging must be order-independent: the gateway concatenates the sender
// then receiver rings, mpdp-inspect may see any interleaving.
func TestMergeWireOrderIndependent(t *testing.T) {
	evs := mergeScenario()
	rev := make([]WireEvent, len(evs))
	for i, ev := range evs {
		rev[len(evs)-1-i] = ev
	}
	a, b := MergeWire(evs), MergeWire(rev)
	if !reflect.DeepEqual(a.Timelines, b.Timelines) {
		t.Fatalf("timelines differ under event reordering:\n%+v\nvs\n%+v", a.Timelines, b.Timelines)
	}
	if a.OffsetNanos != b.OffsetNanos || !reflect.DeepEqual(a.Paths, b.Paths) {
		t.Fatal("offset or path table differs under event reordering")
	}
}

func TestMergeWireStages(t *testing.T) {
	m := MergeWire(mergeScenario())
	if len(m.Stages) != 5 {
		t.Fatalf("stages = %d, want 5", len(m.Stages))
	}
	byName := map[string]WireStage{}
	for _, st := range m.Stages {
		byName[st.Stage] = st
	}
	for name, want := range map[string]int64{
		"sender_queue": 100, "propagation": 100, "reorder_wait": 40, "deliver": 10, "e2e": 250,
	} {
		st, ok := byName[name]
		if !ok {
			t.Fatalf("missing stage %q", name)
		}
		if st.Latency.Count != 1 || st.Latency.P50 != want || st.Latency.Max != want {
			t.Errorf("stage %s: %+v, want single sample %d", name, st.Latency, want)
		}
	}
	dom, frac := m.DominantStage()
	if dom != "sender_queue" && dom != "propagation" {
		t.Fatalf("dominant stage %q (%f)", dom, frac)
	}
}

func TestWireRenderAndHeadline(t *testing.T) {
	m := MergeWire(mergeScenario())
	var buf bytes.Buffer
	if err := m.Render(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"wire trace", "clock offset", "sender_queue", "propagation",
		"flow 0000000000000007", "admitted", "deduped", "at-risk+dup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if h := m.Headline(); !strings.Contains(h, "wire tail") {
		t.Fatalf("headline %q", h)
	}
	empty := MergeWire(nil)
	if h := empty.Headline(); !strings.Contains(h, "no delivered") {
		t.Fatalf("empty headline %q", h)
	}
	buf.Reset()
	if err := empty.Render(&buf, 3); err != nil {
		t.Fatalf("empty render: %v", err)
	}
}

func TestWireChromeTrace(t *testing.T) {
	m := MergeWire(mergeScenario())
	var buf bytes.Buffer
	if err := WriteWireChromeTrace(&buf, m, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names = append(names, n)
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if n, ok := args["name"].(string); ok {
				names = append(names, n)
			}
		}
	}
	joined := strings.Join(names, "|")
	for _, want := range []string{"path 0", "path 1", "sender", "receiver", "flight", "queue", "deliver"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chrome trace missing %q lane/slice; have %s", want, joined)
		}
	}
}

func TestSummarizeNanos(t *testing.T) {
	s := summarizeNanos(nil)
	if s.Count != 0 {
		t.Fatalf("empty summary count %d", s.Count)
	}
	vs := []int64{50, 10, 40, 20, 30}
	s = summarizeNanos(vs)
	if s.Count != 5 || s.Min != 10 || s.Max != 50 || s.P50 != 30 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 30 {
		t.Fatalf("mean %f, want 30", s.Mean)
	}
	// Input must not be mutated (callers hold the sample slices).
	if !reflect.DeepEqual(vs, []int64{50, 10, 40, 20, 30}) {
		t.Fatal("summarizeNanos mutated its input")
	}
}
