package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Human-readable rendering of a merged wire trace: headline (clock offset,
// coverage), attribution stage table, per-path table, and the slowest-K
// per-packet timelines with per-copy detail. Shared by mpdp-gateway's
// end-of-run summary and `mpdp-inspect -wire`.

// DominantStage names the attribution stage with the largest total time
// across complete timelines, with its share of total e2e in [0,1].
func (m *WireMerge) DominantStage() (string, float64) {
	var e2e float64
	name, best := "(none)", 0.0
	for _, st := range m.Stages {
		tot := st.Latency.Mean * float64(st.Latency.Count)
		if st.Stage == "e2e" {
			e2e = tot
			continue
		}
		if tot > best {
			name, best = st.Stage, tot
		}
	}
	if e2e <= 0 {
		return name, 0
	}
	return name, best / e2e
}

// Headline returns the one-line wire-attribution summary, e.g.
// "wire tail = 61% propagation (offset -123µs, 412 packets merged)".
func (m *WireMerge) Headline() string {
	if m.Delivered == 0 {
		return "wire tail = (no delivered packets merged)"
	}
	dom, frac := m.DominantStage()
	return fmt.Sprintf("wire tail = %.0f%% %s (offset %v, %d packets merged)",
		frac*100, dom, time.Duration(m.OffsetNanos), m.Delivered)
}

// Render writes the full report. timelines bounds the per-packet section
// (≤ 0 renders none); the slowest sort means the section leads with the
// tail.
func (m *WireMerge) Render(w io.Writer, timelines int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "-- wire trace: %d sender + %d receiver events --\n",
		m.SenderEvents, m.ReceiverEvents)
	fmt.Fprintf(&b, "clock offset (receiver-sender): %v   min rtt: %v (%d samples)\n",
		time.Duration(m.OffsetNanos), time.Duration(m.MinRTT), m.RTTSamples)
	fmt.Fprintf(&b, "packets: %d delivered, %d lost, %d incomplete (ring truncation)\n",
		m.Delivered, m.Lost, m.Incomplete)
	b.WriteString(m.Headline())
	b.WriteString("\n\nstage            count        mean         p50         p99         max\n")
	for _, st := range m.Stages {
		s := st.Latency
		fmt.Fprintf(&b, "%-14s %7d  %10v  %10v  %10v  %10v\n",
			st.Stage, s.Count, time.Duration(int64(s.Mean)),
			time.Duration(s.P50), time.Duration(s.P99), time.Duration(s.Max))
	}
	if len(m.Paths) > 0 {
		b.WriteString("\npath      tx      rx    wins  deduped   prop-mean    prop-max\n")
		for _, p := range m.Paths {
			fmt.Fprintf(&b, "%4d  %6d  %6d  %6d  %7d  %10v  %10v\n",
				p.Path, p.Tx, p.Rx, p.Wins, p.Deduped,
				time.Duration(p.PropMean), time.Duration(p.PropMax))
		}
	}
	if timelines > 0 {
		for i, tl := range m.Slowest(timelines) {
			fmt.Fprintf(&b, "\n#%d  flow %016x seq %-6d  e2e %v%s\n",
				i+1, tl.FlowID, tl.Seq, time.Duration(tl.E2E), timelineFlags(tl))
			fmt.Fprintf(&b, "    queue %v -> propagation %v -> reorder %v -> deliver %v  (sched: %d copies%s)\n",
				time.Duration(tl.Attr.SenderQueue), time.Duration(tl.Attr.Propagation),
				time.Duration(tl.Attr.ReorderWait), time.Duration(tl.Attr.Deliver),
				tl.SchedCopies, renderVerdict(tl.SchedVerdict))
			for _, c := range tl.Copies {
				status := "in flight"
				switch {
				case c.Admitted:
					status = "admitted"
				case c.Deduped:
					status = "deduped"
				case c.RxNanos != 0:
					status = "arrived"
				case tl.DeliverNanos != 0 || tl.Lost:
					status = "dropped"
				}
				fmt.Fprintf(&b, "    copy path=%d pseq=%-6d %s", c.Path, c.PathSeq, status)
				if c.TxNanos != 0 && c.RxNanos != 0 {
					fmt.Fprintf(&b, "  flight %v", time.Duration((c.RxNanos-m.OffsetNanos)-c.TxNanos))
				}
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func timelineFlags(tl WireTimeline) string {
	switch {
	case tl.Lost:
		return "  LOST"
	case !tl.Complete:
		return "  (incomplete)"
	}
	return ""
}

// VerdictString decodes WireSched verdict bits for display, e.g.
// "at-risk+dup", or "" when no bits are set — the key the incident
// bundle's scheduler verdict mix is grouped by.
func VerdictString(v int64) string {
	var parts []string
	for _, f := range []struct {
		bit  int64
		name string
	}{
		{WireSchedCanary, "canary"},
		{WireSchedAtRisk, "at-risk"},
		{WireSchedDup, "dup"},
		{WireSchedDenied, "denied"},
		{WireSchedFallback, "fallback"},
	} {
		if v&f.bit != 0 {
			parts = append(parts, f.name)
		}
	}
	return strings.Join(parts, "+")
}

// renderVerdict is VerdictString with the report's leading-space
// convention (empty stays empty so unverdicted rows stay clean).
func renderVerdict(v int64) string {
	if s := VerdictString(v); s != "" {
		return " " + s
	}
	return ""
}
