package packet

import "fmt"

// Frame construction and whole-frame parsing. These are the entry points the
// workload generators and NFs use; they compose the individual header codecs.

// BuildOpts configures frame construction.
type BuildOpts struct {
	SrcMAC, DstMAC MAC
	VLANID         uint16 // 0 = untagged
	TTL            uint8  // 0 = default 64
	TOS            uint8
	Ident          uint16
	// TCP-only fields.
	SeqNum, AckNum uint32
	TCPFlags       uint8
	Window         uint16
}

// BuildUDP constructs a complete Ethernet+IPv4+UDP frame carrying payload.
func BuildUDP(key FlowKey, payload []byte, opts BuildOpts) []byte {
	if key.Proto == 0 {
		key.Proto = ProtoUDP
	}
	if key.Proto != ProtoUDP {
		panic(fmt.Sprintf("packet: BuildUDP with proto %d", key.Proto))
	}
	eth := ethFromOpts(opts)
	ethLen := eth.HeaderLen()
	totalIP := IPv4HeaderLen + UDPHeaderLen + len(payload)
	buf := make([]byte, ethLen+totalIP)
	eth.Encode(buf)

	ip := IPv4{
		IHL: 5, TOS: opts.TOS, TotalLen: uint16(totalIP), Ident: opts.Ident,
		TTL: ttlOrDefault(opts.TTL), Proto: ProtoUDP,
		Src: key.SrcIP, Dst: key.DstIP,
	}
	ip.Encode(buf[ethLen:])

	udp := UDP{
		SrcPort: key.SrcPort, DstPort: key.DstPort,
		Length: uint16(UDPHeaderLen + len(payload)),
	}
	udp.Encode(buf[ethLen+IPv4HeaderLen:])
	copy(buf[ethLen+IPv4HeaderLen+UDPHeaderLen:], payload)
	return buf
}

// BuildTCP constructs a complete Ethernet+IPv4+TCP frame carrying payload.
func BuildTCP(key FlowKey, payload []byte, opts BuildOpts) []byte {
	if key.Proto == 0 {
		key.Proto = ProtoTCP
	}
	if key.Proto != ProtoTCP {
		panic(fmt.Sprintf("packet: BuildTCP with proto %d", key.Proto))
	}
	eth := ethFromOpts(opts)
	ethLen := eth.HeaderLen()
	totalIP := IPv4HeaderLen + TCPHeaderLen + len(payload)
	buf := make([]byte, ethLen+totalIP)
	eth.Encode(buf)

	ip := IPv4{
		IHL: 5, TOS: opts.TOS, TotalLen: uint16(totalIP), Ident: opts.Ident,
		TTL: ttlOrDefault(opts.TTL), Proto: ProtoTCP,
		Src: key.SrcIP, Dst: key.DstIP,
	}
	ip.Encode(buf[ethLen:])

	tcp := TCP{
		SrcPort: key.SrcPort, DstPort: key.DstPort,
		SeqNum: opts.SeqNum, AckNum: opts.AckNum,
		DataOff: 5, Flags: opts.TCPFlags, Window: windowOrDefault(opts.Window),
	}
	tcp.Encode(buf[ethLen+IPv4HeaderLen:])
	copy(buf[ethLen+IPv4HeaderLen+TCPHeaderLen:], payload)
	return buf
}

func ethFromOpts(opts BuildOpts) Ethernet {
	eth := Ethernet{Dst: opts.DstMAC, Src: opts.SrcMAC, EtherType: EtherTypeIPv4}
	if opts.VLANID != 0 {
		eth.Tagged = true
		eth.VLANID = opts.VLANID
	}
	return eth
}

func ttlOrDefault(ttl uint8) uint8 {
	if ttl == 0 {
		return 64
	}
	return ttl
}

func windowOrDefault(w uint16) uint16 {
	if w == 0 {
		return 65535
	}
	return w
}

// Parsed is the layered view of a frame produced by ParseFrame.
type Parsed struct {
	Eth  Ethernet
	IP   IPv4
	IsIP bool
	// Exactly one of HasUDP/HasTCP is set for transport frames.
	UDP    UDP
	HasUDP bool
	TCP    TCP
	HasTCP bool
	// Offsets into the frame, for in-place rewriting.
	IPOffset      int
	L4Offset      int
	PayloadOffset int
}

// FlowKey extracts the five-tuple from the parsed layers.
func (pr *Parsed) FlowKey() FlowKey {
	k := FlowKey{SrcIP: pr.IP.Src, DstIP: pr.IP.Dst, Proto: pr.IP.Proto}
	switch {
	case pr.HasUDP:
		k.SrcPort, k.DstPort = pr.UDP.SrcPort, pr.UDP.DstPort
	case pr.HasTCP:
		k.SrcPort, k.DstPort = pr.TCP.SrcPort, pr.TCP.DstPort
	}
	return k
}

// Payload returns the transport payload bytes of the frame.
func (pr *Parsed) Payload(frame []byte) []byte {
	if pr.PayloadOffset <= 0 || pr.PayloadOffset > len(frame) {
		return nil
	}
	return frame[pr.PayloadOffset:]
}

// ParseFrame decodes Ethernet/IPv4/L4 and returns the layered view.
// Non-IPv4 frames return with IsIP=false and no error.
//
//mpdp:hotpath bench=BenchmarkParseFrame
func ParseFrame(frame []byte) (Parsed, error) {
	var pr Parsed
	eth, err := DecodeEthernet(frame)
	if err != nil {
		return pr, err
	}
	pr.Eth = eth
	pr.IPOffset = eth.HeaderLen()
	if eth.EtherType != EtherTypeIPv4 {
		return pr, nil
	}
	ip, err := DecodeIPv4(frame[pr.IPOffset:])
	if err != nil {
		return pr, err
	}
	pr.IP = ip
	pr.IsIP = true
	pr.L4Offset = pr.IPOffset + ip.HeaderLen()
	switch ip.Proto {
	case ProtoUDP:
		u, err := DecodeUDP(frame[pr.L4Offset:])
		if err != nil {
			return pr, err
		}
		pr.UDP = u
		pr.HasUDP = true
		pr.PayloadOffset = pr.L4Offset + UDPHeaderLen
	case ProtoTCP:
		t, err := DecodeTCP(frame[pr.L4Offset:])
		if err != nil {
			return pr, err
		}
		pr.TCP = t
		pr.HasTCP = true
		pr.PayloadOffset = pr.L4Offset + t.HeaderLen()
	default:
		pr.PayloadOffset = pr.L4Offset
	}
	return pr, nil
}

// ExtractFlowKey is the fast path used at ingress: parse just enough of the
// frame to build the five-tuple.
func ExtractFlowKey(frame []byte) (FlowKey, error) {
	pr, err := ParseFrame(frame)
	if err != nil {
		return FlowKey{}, err
	}
	if !pr.IsIP {
		return FlowKey{}, ErrNotIPv4
	}
	return pr.FlowKey(), nil
}
