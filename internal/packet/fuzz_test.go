package packet

import (
	"bytes"
	"testing"
)

// Fuzz targets for the wire-format decoders: on arbitrary bytes they must
// never panic, and on any frame that decodes successfully, re-encoding the
// decoded headers must reproduce the original header bytes.
//
// The seed corpus runs as part of `go test`; `go test -fuzz=FuzzParseFrame`
// explores further.

func fuzzSeedFrames() [][]byte {
	key := FlowKey{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 1, 0, 5),
		SrcPort: 12345, DstPort: 80,
	}
	udpKey := key
	udpKey.Proto = ProtoUDP
	tcpKey := key
	tcpKey.Proto = ProtoTCP
	frames := [][]byte{
		BuildUDP(udpKey, []byte("payload"), BuildOpts{}),
		BuildTCP(tcpKey, []byte("GET /"), BuildOpts{TCPFlags: TCPSyn}),
		BuildUDP(udpKey, nil, BuildOpts{VLANID: 7}),
	}
	// A VXLAN-encapsulated frame.
	inner := BuildUDP(udpKey, []byte("inner"), BuildOpts{})
	outerLen := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + VXLANHdrLen
	buf := make([]byte, outerLen+len(inner))
	eth := Ethernet{EtherType: EtherTypeIPv4}
	eth.Encode(buf)
	ip := IPv4{IHL: 5, TTL: 64, Proto: ProtoUDP,
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + VXLANHdrLen + len(inner)),
		Src:      IP4(172, 16, 0, 1), Dst: IP4(172, 16, 0, 2)}
	ip.Encode(buf[EthHeaderLen:])
	udp := UDP{SrcPort: 50000, DstPort: VXLANPort,
		Length: uint16(UDPHeaderLen + VXLANHdrLen + len(inner))}
	udp.Encode(buf[EthHeaderLen+IPv4HeaderLen:])
	vx := VXLAN{VNI: 42}
	vx.Encode(buf[EthHeaderLen+IPv4HeaderLen+UDPHeaderLen:])
	copy(buf[outerLen:], inner)
	frames = append(frames, buf)
	return frames
}

func FuzzParseFrame(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := ParseFrame(data) // must not panic
		if err != nil || !pr.IsIP {
			return
		}
		// Round-trip property: re-encoding the decoded IPv4 header over
		// the original bytes must be byte-identical (for option-less
		// headers, which Encode supports).
		if pr.IP.IHL == 5 {
			reenc := make([]byte, IPv4HeaderLen)
			h := pr.IP
			h.Encode(reenc)
			orig := data[pr.IPOffset : pr.IPOffset+IPv4HeaderLen]
			if !bytes.Equal(reenc, orig) {
				t.Fatalf("IPv4 re-encode mismatch:\n got %x\nwant %x", reenc, orig)
			}
		}
		if pr.HasUDP {
			reenc := make([]byte, UDPHeaderLen)
			u := pr.UDP
			u.Encode(reenc)
			orig := data[pr.L4Offset : pr.L4Offset+UDPHeaderLen]
			if !bytes.Equal(reenc, orig) {
				t.Fatalf("UDP re-encode mismatch")
			}
		}
		if pr.HasTCP && pr.TCP.DataOff == 5 {
			reenc := make([]byte, TCPHeaderLen)
			c := pr.TCP
			c.Encode(reenc)
			orig := data[pr.L4Offset : pr.L4Offset+TCPHeaderLen]
			// Reserved bits (byte 12 low nibble, byte 13 top bits) are
			// not preserved by Encode; mask them before comparing.
			a := append([]byte(nil), reenc...)
			b := append([]byte(nil), orig...)
			a[12] &= 0xf0
			b[12] &= 0xf0
			a[13] &= 0x3f
			b[13] &= 0x3f
			if !bytes.Equal(a, b) {
				t.Fatalf("TCP re-encode mismatch:\n got %x\nwant %x", a, b)
			}
		}
	})
}

func FuzzDecodeEthernet(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame[:EthHeaderLen+4])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEthernet(data) // must not panic
		if err != nil {
			return
		}
		buf := make([]byte, e.HeaderLen())
		n := e.Encode(buf)
		if !bytes.Equal(buf[:n], data[:n]) {
			t.Fatalf("Ethernet re-encode mismatch: %x vs %x", buf[:n], data[:n])
		}
	})
}

func FuzzChecksumIncremental(f *testing.F) {
	f.Add(uint32(0x0a000001), uint32(0xac100001), uint16(1234))
	f.Fuzz(func(t *testing.T, oldIP, newIP uint32, ident uint16) {
		h := IPv4{IHL: 5, TotalLen: 60, Ident: ident, TTL: 64, Proto: ProtoTCP, Src: oldIP, Dst: IP4(1, 2, 3, 4)}
		buf := make([]byte, IPv4HeaderLen)
		h.Encode(buf)
		// Incremental update for Src change must match full recompute.
		patched := UpdateChecksum32(h.Checksum, oldIP, newIP)
		h2 := h
		h2.Src = newIP
		buf2 := make([]byte, IPv4HeaderLen)
		h2.Encode(buf2)
		if patched != h2.Checksum {
			t.Fatalf("incremental %#04x != recomputed %#04x", patched, h2.Checksum)
		}
	})
}
