package packet

import "encoding/binary"

// Flow hashing. Two hash families are provided:
//
//   - FNV-1a over the five-tuple: the general-purpose hash used by flow
//     tables, NAT maps and sketches.
//   - A Toeplitz hash compatible with Microsoft RSS: what a multi-queue NIC
//     uses to spread flows across receive queues. The vnet vNIC and the
//     RSS baseline policy both use it, so the baseline reproduces real RSS
//     skew (many flows hashing onto one queue).

// fnv1a64 constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns a 64-bit FNV-1a hash of the five-tuple.
//
//mpdp:hotpath bench=BenchmarkHash64
func (k FlowKey) Hash64() uint64 {
	var b [13]byte
	binary.BigEndian.PutUint32(b[0:4], k.SrcIP)
	binary.BigEndian.PutUint32(b[4:8], k.DstIP)
	binary.BigEndian.PutUint16(b[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], k.DstPort)
	b[12] = k.Proto
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// SymmetricHash64 hashes both directions of a flow to the same value, as
// needed by stateful NFs that must see forward and return traffic together.
func (k FlowKey) SymmetricHash64() uint64 {
	a, b := k.Hash64(), k.Reverse().Hash64()
	if a < b {
		return a*31 + b
	}
	return b*31 + a
}

// DefaultRSSKey is the 40-byte secret key Microsoft publishes for RSS
// verification suites; using it makes our Toeplitz output directly
// comparable with NIC datasheet examples.
var DefaultRSSKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// ToeplitzHash computes the RSS Toeplitz hash of the five-tuple input
// (src IP, dst IP, src port, dst port) under key, exactly as a multi-queue
// NIC does for TCP/UDP over IPv4.
//
//mpdp:hotpath bench=BenchmarkToeplitz
func ToeplitzHash(key [40]byte, k FlowKey) uint32 {
	var input [12]byte
	binary.BigEndian.PutUint32(input[0:4], k.SrcIP)
	binary.BigEndian.PutUint32(input[4:8], k.DstIP)
	binary.BigEndian.PutUint16(input[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(input[10:12], k.DstPort)

	var result uint32
	// The sliding 32-bit window over the key, advanced one bit per input bit.
	window := binary.BigEndian.Uint32(key[0:4])
	keyBit := 32 // index of the next key bit to shift in
	for _, inByte := range input {
		for bit := 7; bit >= 0; bit-- {
			if inByte&(1<<uint(bit)) != 0 {
				result ^= window
			}
			// Slide the window left by one, pulling in the next key bit.
			next := (key[keyBit/8] >> uint(7-keyBit%8)) & 1
			window = window<<1 | uint32(next)
			keyBit++
		}
	}
	return result
}

// RSSQueue maps a flow to one of n receive queues using the standard
// indirection of taking the low bits of the Toeplitz hash.
func RSSQueue(key [40]byte, k FlowKey, n int) int {
	if n <= 0 {
		panic("packet: RSSQueue with non-positive queue count")
	}
	return int(ToeplitzHash(key, k) % uint32(n))
}
