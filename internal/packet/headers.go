package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire-format constants.
const (
	EthHeaderLen  = 14
	VLANTagLen    = 4
	IPv4HeaderLen = 20 // without options
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20 // without options
	VXLANHdrLen   = 8

	EtherTypeIPv4 = 0x0800
	EtherTypeVLAN = 0x8100
	EtherTypeARP  = 0x0806

	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17

	VXLANPort = 4789
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrNotIPv4     = errors.New("packet: not an IPv4 frame")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad IPv4 header checksum")
	ErrBadIHL      = errors.New("packet: bad IPv4 IHL")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II header (optionally 802.1Q tagged).
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
	// VLAN fields are valid when Tagged is true.
	Tagged bool
	VLANID uint16
	PCP    uint8
	DEI    bool // drop-eligible indicator
}

// HeaderLen returns the encoded length (14 or 18 with a VLAN tag).
func (e *Ethernet) HeaderLen() int {
	if e.Tagged {
		return EthHeaderLen + VLANTagLen
	}
	return EthHeaderLen
}

// DecodeEthernet parses the Ethernet (and 802.1Q, if present) header.
func DecodeEthernet(b []byte) (Ethernet, error) {
	var e Ethernet
	if len(b) < EthHeaderLen {
		return e, ErrTruncated
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	if et == EtherTypeVLAN {
		if len(b) < EthHeaderLen+VLANTagLen {
			return e, ErrTruncated
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		e.Tagged = true
		e.PCP = uint8(tci >> 13)
		e.DEI = tci&0x1000 != 0
		e.VLANID = tci & 0x0fff
		e.EtherType = binary.BigEndian.Uint16(b[16:18])
		return e, nil
	}
	e.EtherType = et
	return e, nil
}

// Encode writes the header into b, which must have room (HeaderLen bytes).
func (e *Ethernet) Encode(b []byte) int {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	if e.Tagged {
		binary.BigEndian.PutUint16(b[12:14], EtherTypeVLAN)
		tci := uint16(e.PCP)<<13 | (e.VLANID & 0x0fff)
		if e.DEI {
			tci |= 0x1000
		}
		binary.BigEndian.PutUint16(b[14:16], tci)
		binary.BigEndian.PutUint16(b[16:18], e.EtherType)
		return EthHeaderLen + VLANTagLen
	}
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return EthHeaderLen
}

// IPv4 is a decoded IPv4 header (options preserved opaquely via IHL).
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	TotalLen uint16
	Ident    uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Checksum uint16
	Src, Dst uint32
}

// HeaderLen returns the encoded header length in bytes.
func (h *IPv4) HeaderLen() int { return int(h.IHL) * 4 }

// DecodeIPv4 parses an IPv4 header and verifies its checksum.
func DecodeIPv4(b []byte) (IPv4, error) {
	var h IPv4
	if len(b) < IPv4HeaderLen {
		return h, ErrTruncated
	}
	if v := b[0] >> 4; v != 4 {
		return h, ErrBadVersion
	}
	h.IHL = b[0] & 0x0f
	if h.IHL < 5 {
		return h, ErrBadIHL
	}
	hl := int(h.IHL) * 4
	if len(b) < hl {
		return h, ErrTruncated
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.Ident = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = binary.BigEndian.Uint32(b[12:16])
	h.Dst = binary.BigEndian.Uint32(b[16:20])
	if Checksum16(b[:hl]) != 0 {
		return h, ErrBadChecksum
	}
	return h, nil
}

// Encode writes the header (20 bytes, options unsupported on encode) into b
// and fills in the checksum. TotalLen must already be set by the caller.
func (h *IPv4) Encode(b []byte) int {
	if h.IHL == 0 {
		h.IHL = 5
	}
	b[0] = 4<<4 | h.IHL
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.Ident)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], h.Src)
	binary.BigEndian.PutUint32(b[16:20], h.Dst)
	h.Checksum = Checksum16(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], h.Checksum)
	return IPv4HeaderLen
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// DecodeUDP parses a UDP header.
func DecodeUDP(b []byte) (UDP, error) {
	var u UDP
	if len(b) < UDPHeaderLen {
		return u, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	return u, nil
}

// Encode writes the header into b (checksum left as provided; 0 = none,
// which is legal for UDP over IPv4).
func (u *UDP) Encode(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return UDPHeaderLen
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	SeqNum, AckNum   uint32
	DataOff          uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// HeaderLen returns the encoded header length in bytes.
func (t *TCP) HeaderLen() int { return int(t.DataOff) * 4 }

// DecodeTCP parses a TCP header.
func DecodeTCP(b []byte) (TCP, error) {
	var t TCP
	if len(b) < TCPHeaderLen {
		return t, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.SeqNum = binary.BigEndian.Uint32(b[4:8])
	t.AckNum = binary.BigEndian.Uint32(b[8:12])
	t.DataOff = b[12] >> 4
	if t.DataOff < 5 {
		return t, ErrBadIHL
	}
	if len(b) < t.HeaderLen() {
		return t, ErrTruncated
	}
	t.Flags = b[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	return t, nil
}

// Encode writes the header (20 bytes, no options on encode) into b.
func (t *TCP) Encode(b []byte) int {
	if t.DataOff == 0 {
		t.DataOff = 5
	}
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.SeqNum)
	binary.BigEndian.PutUint32(b[8:12], t.AckNum)
	b[12] = t.DataOff << 4
	b[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	return TCPHeaderLen
}

// VXLAN is a decoded VXLAN header (RFC 7348).
type VXLAN struct {
	VNI uint32 // 24-bit virtual network identifier
}

// DecodeVXLAN parses a VXLAN header.
func DecodeVXLAN(b []byte) (VXLAN, error) {
	var v VXLAN
	if len(b) < VXLANHdrLen {
		return v, ErrTruncated
	}
	if b[0]&0x08 == 0 {
		return v, errors.New("packet: VXLAN I flag not set")
	}
	v.VNI = binary.BigEndian.Uint32(b[4:8]) >> 8
	return v, nil
}

// Encode writes the header into b.
func (v *VXLAN) Encode(b []byte) int {
	b[0] = 0x08
	b[1], b[2], b[3] = 0, 0, 0
	binary.BigEndian.PutUint32(b[4:8], v.VNI<<8)
	return VXLANHdrLen
}

// Checksum16 computes the Internet checksum (RFC 1071) over b.
// Computing it over a header with a correct embedded checksum yields zero.
func Checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// UpdateChecksum16 incrementally updates an Internet checksum when a 16-bit
// field changes from old to new (RFC 1624, eqn. 3). NAT uses this to avoid
// recomputing full checksums per rewritten packet.
func UpdateChecksum16(sum, old, new16 uint16) uint16 {
	c := uint32(^sum&0xffff) + uint32(^old&0xffff) + uint32(new16)
	for c > 0xffff {
		c = (c >> 16) + (c & 0xffff)
	}
	return ^uint16(c)
}

// UpdateChecksum32 applies UpdateChecksum16 for a 32-bit field change.
func UpdateChecksum32(sum uint16, old, new32 uint32) uint16 {
	sum = UpdateChecksum16(sum, uint16(old>>16), uint16(new32>>16))
	sum = UpdateChecksum16(sum, uint16(old), uint16(new32))
	return sum
}
