// Package packet defines the packet model of the MPDP data plane: raw frame
// bytes with real Ethernet/IPv4/UDP/TCP/VXLAN codecs, five-tuple flow keys,
// and RSS hashing.
//
// Unlike a pure queueing simulator, MPDP's network functions operate on
// genuine wire-format bytes — the NAT rewrites real IPv4 headers and fixes
// real checksums, the DPI scans real payloads — so the per-packet costs and
// correctness properties of the data plane are exercised end to end.
package packet

import (
	"fmt"

	"mpdp/internal/sim"
)

// Verdict is the outcome a processing stage assigns to a packet.
type Verdict uint8

const (
	// Pass lets the packet continue to the next stage.
	Pass Verdict = iota
	// Drop discards the packet (policy drop, not congestion).
	Drop
	// Consume means a stage took ownership (e.g. terminated a tunnel).
	Consume
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Consume:
		return "consume"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// DropReason says why a packet left the data plane without being delivered.
type DropReason uint8

const (
	NotDropped     DropReason = iota
	DropPolicy                // an NF verdict (ACL deny, invalid header, …)
	DropQueueFull             // congestion loss at a bounded queue
	DropReorder               // evicted from the reorder buffer by timeout
	DropCancelled             // duplicate cancelled after its twin won
	DropPathFailed            // lost to a failed lane (fail-stop refusal or drain)
)

func (d DropReason) String() string {
	switch d {
	case NotDropped:
		return "none"
	case DropPolicy:
		return "policy"
	case DropQueueFull:
		return "queue-full"
	case DropReorder:
		return "reorder-timeout"
	case DropCancelled:
		return "dup-cancelled"
	case DropPathFailed:
		return "path-failed"
	default:
		return fmt.Sprintf("drop(%d)", uint8(d))
	}
}

// Packet is one frame traversing the virtual data plane, together with the
// simulation metadata used to measure its last-mile latency.
type Packet struct {
	// ID is unique per packet; duplicates minted by the redundancy policy
	// share OrigID but have distinct IDs.
	ID     uint64
	OrigID uint64

	// Data holds the wire-format frame starting at the Ethernet header.
	Data []byte

	// Flow is the parsed five-tuple, cached at ingress. Stateful elements
	// that rewrite headers (NAT, LB) keep it consistent as they go.
	Flow FlowKey

	// FlowID is the immutable identity assigned at ingress (hash of the
	// original five-tuple). It survives NAT/LB rewrites, so the reorder
	// buffer and per-flow accounting key on it.
	FlowID uint64

	// Seq is the per-FlowID ingress sequence number; the reorder buffer
	// restores delivery in Seq order.
	Seq uint64

	// Virtual-time trace of the packet's last mile.
	Ingress   sim.Time // entered the vNIC
	Enqueued  sim.Time // enqueued on its assigned path
	ServiceAt sim.Time // began NF-chain service on a core
	Done      sim.Time // finished NF-chain service
	Delivered sim.Time // released in order to the guest

	// Deadline is the absolute virtual time by which the packet must be
	// delivered to count as on time (0 = no deadline). Stamped at ingress;
	// deadline-aware scheduling reads it, delivery accounting scores it.
	Deadline sim.Time

	// PathID is the multipath lane the scheduler chose (-1 = unset).
	PathID int

	// PathSeq is the per-path wire sequence of the copy that carried the
	// packet — set by the wire transport's receiver so traces can name the
	// exact admitted copy; always 0 in the simulator.
	PathSeq uint64

	// IsDup marks redundancy copies; Cancelled marks a copy whose twin won.
	IsDup     bool
	Cancelled bool

	Dropped DropReason
}

// Size returns the frame length in bytes.
func (p *Packet) Size() int { return len(p.Data) }

// QueueWait is the time spent waiting for a core, once known.
func (p *Packet) QueueWait() sim.Duration { return p.ServiceAt - p.Enqueued }

// ServiceTime is the NF-chain processing time, once known.
func (p *Packet) ServiceTime() sim.Duration { return p.Done - p.ServiceAt }

// ReorderWait is the in-order release delay after service, once known.
func (p *Packet) ReorderWait() sim.Duration { return p.Delivered - p.Done }

// Latency is the full last-mile latency: ingress to in-order delivery.
func (p *Packet) Latency() sim.Duration { return p.Delivered - p.Ingress }

// MissedDeadline reports whether a delivered packet blew its deadline.
// Always false for packets without one.
func (p *Packet) MissedDeadline() bool {
	return p.Deadline > 0 && p.Delivered > p.Deadline
}

// Clone deep-copies the packet (fresh Data buffer) and assigns the given
// new ID, preserving OrigID lineage. Used by the duplication policy.
func (p *Packet) Clone(newID uint64) *Packet {
	q := *p
	q.ID = newID
	q.IsDup = true
	q.Data = make([]byte, len(p.Data))
	copy(q.Data, p.Data)
	return &q
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt(id=%d flow=%s seq=%d len=%d path=%d)",
		p.ID, p.Flow, p.Seq, len(p.Data), p.PathID)
}

// FlowKey is the canonical five-tuple identifying a transport flow.
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%d",
		ipString(k.SrcIP), k.SrcPort, ipString(k.DstIP), k.DstPort, k.Proto)
}

// Reverse returns the key of the opposite direction, used by NAT to match
// return traffic.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP: k.DstIP, DstIP: k.SrcIP,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IP4 packs four octets into the uint32 form used by FlowKey.
func IP4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
