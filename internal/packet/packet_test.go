package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"mpdp/internal/sim"
)

func TestIP4Pack(t *testing.T) {
	ip := IP4(10, 0, 1, 200)
	if ip != 0x0a0001c8 {
		t.Fatalf("IP4 = %#x", ip)
	}
	if got := ipString(ip); got != "10.0.1.200" {
		t.Fatalf("ipString = %q", got)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}
	r := k.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 4 || r.DstPort != 3 || r.Proto != ProtoTCP {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa},
		Src:       MAC{1, 2, 3, 4, 5, 6},
		EtherType: EtherTypeIPv4,
	}
	buf := make([]byte, e.HeaderLen())
	n := e.Encode(buf)
	if n != EthHeaderLen {
		t.Fatalf("Encode wrote %d bytes", n)
	}
	got, err := DecodeEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
}

func TestEthernetVLANRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst: MAC{1}, Src: MAC{2}, EtherType: EtherTypeIPv4,
		Tagged: true, VLANID: 412, PCP: 5,
	}
	buf := make([]byte, e.HeaderLen())
	if n := e.Encode(buf); n != EthHeaderLen+VLANTagLen {
		t.Fatalf("tagged encode wrote %d bytes", n)
	}
	got, err := DecodeEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("VLAN round trip: got %+v want %+v", got, e)
	}
}

func TestDecodeEthernetTruncated(t *testing.T) {
	if _, err := DecodeEthernet(make([]byte, 5)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Tagged frame cut off mid-tag.
	buf := make([]byte, 15)
	buf[12], buf[13] = 0x81, 0x00
	if _, err := DecodeEthernet(buf); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		IHL: 5, TOS: 0x10, TotalLen: 100, Ident: 777,
		Flags: 2, FragOff: 0, TTL: 64, Proto: ProtoUDP,
		Src: IP4(192, 168, 0, 1), Dst: IP4(10, 0, 0, 2),
	}
	buf := make([]byte, IPv4HeaderLen)
	h.Encode(buf)
	got, err := DecodeIPv4(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4{IHL: 5, TotalLen: 40, TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2}
	buf := make([]byte, IPv4HeaderLen)
	h.Encode(buf)
	buf[8] ^= 0xff // corrupt TTL
	if _, err := DecodeIPv4(buf); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeIPv4BadVersion(t *testing.T) {
	buf := make([]byte, IPv4HeaderLen)
	buf[0] = 6 << 4
	if _, err := DecodeIPv4(buf); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeIPv4BadIHL(t *testing.T) {
	buf := make([]byte, IPv4HeaderLen)
	buf[0] = 4<<4 | 3
	if _, err := DecodeIPv4(buf); err != ErrBadIHL {
		t.Fatalf("err = %v, want ErrBadIHL", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 1234, DstPort: 53, Length: 30, Checksum: 0xabcd}
	buf := make([]byte, UDPHeaderLen)
	u.Encode(buf)
	got, err := DecodeUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("round trip: got %+v want %+v", got, u)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	c := TCP{
		SrcPort: 443, DstPort: 51000, SeqNum: 1 << 30, AckNum: 99,
		DataOff: 5, Flags: TCPSyn | TCPAck, Window: 29200, Urgent: 1,
	}
	buf := make([]byte, TCPHeaderLen)
	c.Encode(buf)
	got, err := DecodeTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Checksum is left at the caller's value (0 here).
	c.Checksum = 0
	if got != c {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, c)
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	v := VXLAN{VNI: 0x123456}
	buf := make([]byte, VXLANHdrLen)
	v.Encode(buf)
	got, err := DecodeVXLAN(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip: got %+v want %+v", got, v)
	}
}

func TestVXLANRequiresIFlag(t *testing.T) {
	buf := make([]byte, VXLANHdrLen)
	if _, err := DecodeVXLAN(buf); err == nil {
		t.Fatal("missing I flag accepted")
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum16(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum16 = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	// Manual: 0x0102 + 0x0300 = 0x0402 -> ^0x0402.
	if got := Checksum16(b); got != ^uint16(0x0402) {
		t.Fatalf("odd-length checksum = %#04x", got)
	}
}

func TestUpdateChecksum16(t *testing.T) {
	h := IPv4{IHL: 5, TotalLen: 40, TTL: 64, Proto: ProtoTCP, Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8)}
	buf := make([]byte, IPv4HeaderLen)
	h.Encode(buf)
	// Change Ident incrementally and verify against full recompute.
	oldIdent := h.Ident
	h.Ident = 4242
	incr := UpdateChecksum16(h.Checksum, oldIdent, h.Ident)
	full := IPv4{IHL: 5, TotalLen: 40, Ident: 4242, TTL: 64, Proto: ProtoTCP, Src: h.Src, Dst: h.Dst}
	buf2 := make([]byte, IPv4HeaderLen)
	full.Encode(buf2)
	if incr != full.Checksum {
		t.Fatalf("incremental %#04x != recomputed %#04x", incr, full.Checksum)
	}
}

func TestUpdateChecksum32(t *testing.T) {
	h := IPv4{IHL: 5, TotalLen: 40, TTL: 64, Proto: ProtoUDP, Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2)}
	buf := make([]byte, IPv4HeaderLen)
	h.Encode(buf)
	newSrc := IP4(172, 16, 5, 9)
	incr := UpdateChecksum32(h.Checksum, h.Src, newSrc)
	full := h
	full.Src = newSrc
	buf2 := make([]byte, IPv4HeaderLen)
	full.Encode(buf2)
	if incr != full.Checksum {
		t.Fatalf("incremental %#04x != recomputed %#04x", incr, full.Checksum)
	}
}

func TestBuildUDPParses(t *testing.T) {
	key := FlowKey{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 5555, DstPort: 80, Proto: ProtoUDP,
	}
	payload := []byte("hello, last mile")
	frame := BuildUDP(key, payload, BuildOpts{})
	pr, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.IsIP || !pr.HasUDP {
		t.Fatalf("parse: %+v", pr)
	}
	if pr.FlowKey() != key {
		t.Fatalf("flow key %v, want %v", pr.FlowKey(), key)
	}
	if !bytes.Equal(pr.Payload(frame), payload) {
		t.Fatalf("payload %q", pr.Payload(frame))
	}
	if int(pr.IP.TotalLen) != IPv4HeaderLen+UDPHeaderLen+len(payload) {
		t.Fatalf("TotalLen = %d", pr.IP.TotalLen)
	}
}

func TestBuildTCPParses(t *testing.T) {
	key := FlowKey{
		SrcIP: IP4(192, 168, 1, 5), DstIP: IP4(8, 8, 8, 8),
		SrcPort: 40000, DstPort: 443, Proto: ProtoTCP,
	}
	frame := BuildTCP(key, []byte("GET /"), BuildOpts{SeqNum: 1000, TCPFlags: TCPPsh | TCPAck})
	pr, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.HasTCP {
		t.Fatal("not parsed as TCP")
	}
	if pr.TCP.SeqNum != 1000 || pr.TCP.Flags != TCPPsh|TCPAck {
		t.Fatalf("TCP fields: %+v", pr.TCP)
	}
	if pr.FlowKey() != key {
		t.Fatalf("flow key %v, want %v", pr.FlowKey(), key)
	}
}

func TestBuildVLANTagged(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}
	frame := BuildUDP(key, nil, BuildOpts{VLANID: 99})
	pr, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Eth.Tagged || pr.Eth.VLANID != 99 {
		t.Fatalf("VLAN not preserved: %+v", pr.Eth)
	}
	if pr.FlowKey() != key {
		t.Fatalf("flow key through VLAN = %v", pr.FlowKey())
	}
}

func TestBuildUDPWrongProtoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildUDP with TCP proto did not panic")
		}
	}()
	BuildUDP(FlowKey{Proto: ProtoTCP}, nil, BuildOpts{})
}

func TestExtractFlowKeyRejectsARP(t *testing.T) {
	e := Ethernet{EtherType: EtherTypeARP}
	buf := make([]byte, EthHeaderLen)
	e.Encode(buf)
	if _, err := ExtractFlowKey(buf); err != ErrNotIPv4 {
		t.Fatalf("err = %v, want ErrNotIPv4", err)
	}
}

func TestPacketClone(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}
	p := &Packet{ID: 10, OrigID: 10, Data: BuildUDP(key, []byte("x"), BuildOpts{}), Flow: key, Seq: 7}
	q := p.Clone(11)
	if q.ID != 11 || q.OrigID != 10 || !q.IsDup {
		t.Fatalf("clone identity: %+v", q)
	}
	if q.Seq != p.Seq || q.Flow != p.Flow {
		t.Fatal("clone lost flow metadata")
	}
	q.Data[0] ^= 0xff
	if p.Data[0] == q.Data[0] {
		t.Fatal("clone shares the data buffer")
	}
}

func TestPacketLatencyComponents(t *testing.T) {
	p := &Packet{
		Ingress: 100, Enqueued: 110, ServiceAt: 150, Done: 180, Delivered: 200,
	}
	if p.QueueWait() != 40 || p.ServiceTime() != 30 || p.ReorderWait() != 20 {
		t.Fatalf("components: wait=%v svc=%v reorder=%v", p.QueueWait(), p.ServiceTime(), p.ReorderWait())
	}
	if p.Latency() != 100 {
		t.Fatalf("latency = %v", p.Latency())
	}
	var _ sim.Time = p.Latency() // type check
}

func TestVerdictAndDropStrings(t *testing.T) {
	if Pass.String() != "pass" || Drop.String() != "drop" || Consume.String() != "consume" {
		t.Fatal("verdict strings")
	}
	for _, d := range []DropReason{NotDropped, DropPolicy, DropQueueFull, DropReorder, DropCancelled} {
		if d.String() == "" {
			t.Fatal("empty drop reason string")
		}
	}
}

// Microsoft RSS verification vectors (IPv4 with TCP ports), as published in
// the Windows RSS documentation for the canonical 40-byte key.
func TestToeplitzVerificationVectors(t *testing.T) {
	cases := []struct {
		src, dst         uint32
		srcPort, dstPort uint16
		want             uint32
	}{
		{IP4(66, 9, 149, 187), IP4(161, 142, 100, 80), 2794, 1766, 0x51ccc178},
		{IP4(199, 92, 111, 2), IP4(65, 69, 140, 83), 14230, 4739, 0xc626b0ea},
		{IP4(24, 19, 198, 95), IP4(12, 22, 207, 184), 12898, 38024, 0x5c2b394a},
		{IP4(38, 27, 205, 30), IP4(209, 142, 163, 6), 48228, 2217, 0xafc7327f},
		{IP4(153, 39, 163, 191), IP4(202, 188, 127, 2), 44251, 1303, 0x10e828a2},
	}
	for i, c := range cases {
		k := FlowKey{SrcIP: c.src, DstIP: c.dst, SrcPort: c.srcPort, DstPort: c.dstPort, Proto: ProtoTCP}
		if got := ToeplitzHash(DefaultRSSKey, k); got != c.want {
			t.Errorf("vector %d: ToeplitzHash = %#08x, want %#08x", i, got, c.want)
		}
	}
}

func TestRSSQueueRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := FlowKey{SrcIP: uint32(i * 7919), DstIP: uint32(i), SrcPort: uint16(i), DstPort: 80, Proto: ProtoTCP}
		q := RSSQueue(DefaultRSSKey, k, 8)
		if q < 0 || q >= 8 {
			t.Fatalf("RSSQueue out of range: %d", q)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	if k.Hash64() != k.Hash64() {
		t.Fatal("Hash64 not deterministic")
	}
	k2 := k
	k2.DstPort = 5
	if k.Hash64() == k2.Hash64() {
		t.Fatal("trivially colliding Hash64")
	}
}

func TestSymmetricHash(t *testing.T) {
	k := FlowKey{SrcIP: 9, DstIP: 7, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	if k.SymmetricHash64() != k.Reverse().SymmetricHash64() {
		t.Fatal("symmetric hash differs across directions")
	}
}

// Property: any UDP frame we build parses back to the same flow key and
// payload length.
func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, payloadLen uint8) bool {
		key := FlowKey{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: ProtoUDP}
		payload := make([]byte, payloadLen)
		frame := BuildUDP(key, payload, BuildOpts{})
		pr, err := ParseFrame(frame)
		if err != nil || !pr.HasUDP {
			return false
		}
		return pr.FlowKey() == key && len(pr.Payload(frame)) == int(payloadLen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the IPv4 checksum of any encoded header validates, and
// incremental update matches recompute for TTL decrement.
func TestQuickIPv4ChecksumTTL(t *testing.T) {
	f := func(src, dst uint32, ident uint16, ttl uint8) bool {
		if ttl < 2 {
			ttl = 2
		}
		h := IPv4{IHL: 5, TotalLen: 60, Ident: ident, TTL: ttl, Proto: ProtoTCP, Src: src, Dst: dst}
		buf := make([]byte, IPv4HeaderLen)
		h.Encode(buf)
		if Checksum16(buf) != 0 {
			return false
		}
		// Decrement TTL as a router would, patch checksum incrementally.
		old16 := uint16(h.TTL)<<8 | uint16(h.Proto)
		h.TTL--
		new16 := uint16(h.TTL)<<8 | uint16(h.Proto)
		patched := UpdateChecksum16(h.Checksum, old16, new16)
		h2 := h
		buf2 := make([]byte, IPv4HeaderLen)
		h2.Encode(buf2)
		return patched == h2.Checksum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseFrame(b *testing.B) {
	key := FlowKey{SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: ProtoUDP}
	frame := BuildUDP(key, make([]byte, 512), BuildOpts{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToeplitz(b *testing.B) {
	k := FlowKey{SrcIP: IP4(66, 9, 149, 187), DstIP: IP4(161, 142, 100, 80), SrcPort: 2794, DstPort: 1766}
	for i := 0; i < b.N; i++ {
		_ = ToeplitzHash(DefaultRSSKey, k)
	}
}

func BenchmarkHash64(b *testing.B) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	for i := 0; i < b.N; i++ {
		_ = k.Hash64()
	}
}

func TestEthernetVLANDEIRoundTrip(t *testing.T) {
	// Regression for a fuzzer finding: the 802.1Q drop-eligible bit was
	// silently discarded by decode/encode.
	e := Ethernet{
		Dst: MAC{1}, Src: MAC{2}, EtherType: EtherTypeIPv4,
		Tagged: true, VLANID: 48, PCP: 1, DEI: true,
	}
	buf := make([]byte, e.HeaderLen())
	e.Encode(buf)
	got, err := DecodeEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("DEI round trip: got %+v want %+v", got, e)
	}
	if buf[14]&0x10 == 0 {
		t.Fatal("DEI bit not on the wire")
	}
}
