// Package queueing provides closed-form queueing-theory results (M/M/1,
// M/D/1, M/G/1 via Pollaczek–Khinchine, and M/M/c) used to validate the
// MPDP simulator against theory: a lane fed Poisson arrivals with known
// service distribution must reproduce the analytic mean wait and queue
// length, or the discrete-event substrate cannot be trusted for the
// experiments built on it. The validation tests live in the vnet and
// experiment packages.
//
// All formulas are for stable systems (utilization < 1); constructors
// reject anything else.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable is returned for utilization >= 1.
var ErrUnstable = errors.New("queueing: utilization must be < 1")

// MM1 describes an M/M/1 queue: Poisson arrivals at rate lambda,
// exponential service at rate mu, one server, infinite buffer.
type MM1 struct {
	Lambda float64 // arrivals per unit time
	Mu     float64 // services per unit time
}

// NewMM1 validates the parameters.
func NewMM1(lambda, mu float64) (MM1, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1{}, errors.New("queueing: rates must be positive")
	}
	if lambda >= mu {
		return MM1{}, ErrUnstable
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanWait returns Wq, the mean time in queue (excluding service).
func (q MM1) MeanWait() float64 {
	rho := q.Rho()
	return rho / (q.Mu * (1 - rho))
}

// MeanSojourn returns W, the mean time in system (queue + service).
func (q MM1) MeanSojourn() float64 { return q.MeanWait() + 1/q.Mu }

// MeanQueueLen returns Lq, the mean number waiting (Little's law on Wq).
func (q MM1) MeanQueueLen() float64 { return q.Lambda * q.MeanWait() }

// MeanInSystem returns L, the mean number in system.
func (q MM1) MeanInSystem() float64 { return q.Lambda * q.MeanSojourn() }

// PN returns the steady-state probability of exactly n in system.
func (q MM1) PN(n int) float64 {
	rho := q.Rho()
	return (1 - rho) * math.Pow(rho, float64(n))
}

// SojournQuantile returns the p-quantile of the sojourn time (the sojourn
// distribution of M/M/1 is exponential with rate mu-lambda).
func (q MM1) SojournQuantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / (q.Mu - q.Lambda)
}

// MG1 describes an M/G/1 queue: Poisson arrivals, general service with the
// given first two moments, one server.
type MG1 struct {
	Lambda  float64 // arrival rate
	MeanSvc float64 // E[S]
	VarSvc  float64 // Var[S]
}

// NewMG1 validates the parameters.
func NewMG1(lambda, meanSvc, varSvc float64) (MG1, error) {
	if lambda <= 0 || meanSvc <= 0 || varSvc < 0 {
		return MG1{}, errors.New("queueing: invalid M/G/1 parameters")
	}
	if lambda*meanSvc >= 1 {
		return MG1{}, ErrUnstable
	}
	return MG1{Lambda: lambda, MeanSvc: meanSvc, VarSvc: varSvc}, nil
}

// Rho returns the utilization λ·E[S].
func (q MG1) Rho() float64 { return q.Lambda * q.MeanSvc }

// SCV returns the squared coefficient of variation of service.
func (q MG1) SCV() float64 { return q.VarSvc / (q.MeanSvc * q.MeanSvc) }

// MeanWait returns Wq by the Pollaczek–Khinchine formula:
// Wq = λ·E[S²] / (2(1-ρ)).
func (q MG1) MeanWait() float64 {
	es2 := q.VarSvc + q.MeanSvc*q.MeanSvc
	return q.Lambda * es2 / (2 * (1 - q.Rho()))
}

// MeanSojourn returns W = Wq + E[S].
func (q MG1) MeanSojourn() float64 { return q.MeanWait() + q.MeanSvc }

// MeanQueueLen returns Lq by Little's law.
func (q MG1) MeanQueueLen() float64 { return q.Lambda * q.MeanWait() }

// MD1 returns the M/D/1 special case (deterministic service): an M/G/1
// with zero service variance.
func MD1(lambda, svc float64) (MG1, error) { return NewMG1(lambda, svc, 0) }

// MMc describes an M/M/c queue: Poisson arrivals, exponential service,
// c identical servers — the analytic model of a c-path data plane with a
// perfectly shared queue, i.e. the theoretical lower bound multipath
// scheduling chases.
type MMc struct {
	Lambda float64
	Mu     float64 // per-server service rate
	C      int
}

// NewMMc validates the parameters.
func NewMMc(lambda, mu float64, c int) (MMc, error) {
	if lambda <= 0 || mu <= 0 || c < 1 {
		return MMc{}, errors.New("queueing: invalid M/M/c parameters")
	}
	if lambda >= mu*float64(c) {
		return MMc{}, ErrUnstable
	}
	return MMc{Lambda: lambda, Mu: mu, C: c}, nil
}

// Rho returns the per-server utilization λ/(cμ).
func (q MMc) Rho() float64 { return q.Lambda / (q.Mu * float64(q.C)) }

// ErlangC returns the probability an arrival must wait (all servers busy).
func (q MMc) ErlangC() float64 {
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := q.C
	// Numerically stable iterative Erlang-B, then convert to Erlang-C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Rho()
	return b / (1 - rho*(1-b))
}

// MeanWait returns Wq = C(c, a) / (cμ - λ).
func (q MMc) MeanWait() float64 {
	return q.ErlangC() / (q.Mu*float64(q.C) - q.Lambda)
}

// MeanSojourn returns W = Wq + 1/μ.
func (q MMc) MeanSojourn() float64 { return q.MeanWait() + 1/q.Mu }

// MeanQueueLen returns Lq by Little's law.
func (q MMc) MeanQueueLen() float64 { return q.Lambda * q.MeanWait() }
