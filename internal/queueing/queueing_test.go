package queueing

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestMM1KnownValues(t *testing.T) {
	// λ=0.5, μ=1: ρ=0.5, Wq=1, W=2, Lq=0.5, L=1.
	q, err := NewMM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, q.Rho(), 0.5, 1e-12, "rho")
	almost(t, q.MeanWait(), 1, 1e-12, "Wq")
	almost(t, q.MeanSojourn(), 2, 1e-12, "W")
	almost(t, q.MeanQueueLen(), 0.5, 1e-12, "Lq")
	almost(t, q.MeanInSystem(), 1, 1e-12, "L")
}

func TestMM1StateProbabilities(t *testing.T) {
	q, _ := NewMM1(0.8, 1)
	sum := 0.0
	for n := 0; n < 200; n++ {
		p := q.PN(n)
		if p < 0 || p > 1 {
			t.Fatalf("PN(%d) = %v", n, p)
		}
		sum += p
	}
	almost(t, sum, 1, 1e-9, "sum PN")
	// L = sum n*PN(n) must match ρ/(1-ρ) = 4.
	l := 0.0
	for n := 0; n < 2000; n++ {
		l += float64(n) * q.PN(n)
	}
	almost(t, l, 4, 1e-6, "L from PN")
}

func TestMM1SojournQuantile(t *testing.T) {
	q, _ := NewMM1(0.5, 1)
	// Sojourn ~ Exp(0.5): median = ln2/0.5.
	almost(t, q.SojournQuantile(0.5), math.Ln2/0.5, 1e-12, "median sojourn")
	if q.SojournQuantile(0) != 0 || !math.IsInf(q.SojournQuantile(1), 1) {
		t.Fatal("quantile edge cases")
	}
	// p99 > median.
	if q.SojournQuantile(0.99) <= q.SojournQuantile(0.5) {
		t.Fatal("quantiles not monotone")
	}
}

func TestMM1RejectsUnstable(t *testing.T) {
	if _, err := NewMM1(1, 1); err != ErrUnstable {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewMM1(2, 1); err != ErrUnstable {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewMM1(0, 1); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: Var = 1/μ². P-K must equal the M/M/1 result.
	lambda, mu := 0.7, 1.0
	mm1, _ := NewMM1(lambda, mu)
	mg1, err := NewMG1(lambda, 1/mu, 1/(mu*mu))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, mg1.MeanWait(), mm1.MeanWait(), 1e-12, "Wq M/G/1 vs M/M/1")
	almost(t, mg1.MeanSojourn(), mm1.MeanSojourn(), 1e-12, "W")
}

func TestMD1HalvesQueueing(t *testing.T) {
	// Deterministic service halves Wq relative to exponential (SCV 0 vs 1):
	// Wq(M/D/1) = Wq(M/M/1)/2 × (1+SCV)/2 relation.
	lambda, mu := 0.8, 1.0
	mm1, _ := NewMM1(lambda, mu)
	md1, err := MD1(lambda, 1/mu)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, md1.MeanWait(), mm1.MeanWait()/2, 1e-12, "Wq M/D/1")
	almost(t, md1.SCV(), 0, 1e-12, "SCV")
}

func TestMG1HighVarianceHurts(t *testing.T) {
	low, _ := NewMG1(0.5, 1, 0.1)
	high, _ := NewMG1(0.5, 1, 10)
	if high.MeanWait() <= low.MeanWait() {
		t.Fatal("higher service variance did not increase waiting")
	}
}

func TestMG1RejectsUnstable(t *testing.T) {
	if _, err := NewMG1(1, 1, 0); err != ErrUnstable {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewMG1(0.5, 1, -1); err == nil {
		t.Fatal("negative variance accepted")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	mm1, _ := NewMM1(0.6, 1)
	mmc, err := NewMMc(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, mmc.MeanWait(), mm1.MeanWait(), 1e-12, "Wq M/M/1 vs M/M/c(1)")
	// Erlang C with one server equals rho.
	almost(t, mmc.ErlangC(), 0.6, 1e-12, "ErlangC c=1")
}

func TestMMcKnownValue(t *testing.T) {
	// Classic textbook case: λ=2, μ=1, c=3 → ρ=2/3, C(3,2)≈0.4444,
	// Wq = C/(cμ-λ) ≈ 0.4444.
	q, err := NewMMc(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, q.ErlangC(), 4.0/9.0, 1e-9, "ErlangC(3,2)")
	almost(t, q.MeanWait(), 4.0/9.0, 1e-9, "Wq")
}

func TestMMcPoolingBeatsSplitQueues(t *testing.T) {
	// The multipath motivation in one inequality: one pooled M/M/4 beats
	// four independent M/M/1 queues each taking a quarter of the load.
	pooled, _ := NewMMc(3.2, 1, 4)
	split, _ := NewMM1(0.8, 1)
	if pooled.MeanWait() >= split.MeanWait() {
		t.Fatalf("pooling (%v) not better than splitting (%v)",
			pooled.MeanWait(), split.MeanWait())
	}
}

func TestMMcRejectsUnstable(t *testing.T) {
	if _, err := NewMMc(4, 1, 4); err != ErrUnstable {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewMMc(1, 1, 0); err == nil {
		t.Fatal("zero servers accepted")
	}
}
