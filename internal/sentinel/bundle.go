package sentinel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpdp/internal/obs"
)

// The incident bundle is a directory an operator can tar up and open
// cold — everything needed to explain one tail episode, nothing that
// needs the producing process alive:
//
//	incident-0001/
//	  manifest.json     versioned index + episode summary (this file)
//	  pre.wir           MPDPWIR1: both ends' ring history *before* the trigger
//	  during.wir        MPDPWIR1: both ends' events captured during the episode
//	  attribution.json  before/during stage tables, verdict mix, per-path table
//	  slo.json          SLO tracker status at episode end (when tracked)
//	  pathhealth.json   path-health transition timeline over the capture's life
//	  cpu.pprof         CPU profile window (when a debug listener was given)
//	  heap.pprof        heap profile at episode start (ditto)
//
// The manifest is the index: a strict, versioned decoder (the fuzz
// target) so tooling fails loudly on a bundle from a different era
// instead of misreading it.

// ManifestVersion identifies this bundle layout.
const ManifestVersion = "mpdp-incident/1"

// ManifestName is the index file inside every bundle directory.
const ManifestName = "manifest.json"

// Manifest is the bundle's index document. Every field derives from the
// injected signal stream and captured events — never from a wall clock
// the detector didn't see — so identical inputs yield byte-identical
// manifests (test-pinned).
type Manifest struct {
	Version string `json:"version"`
	// Seq numbers the bundle within its capture's life, 1-based; the
	// directory name is derived from it (incident-%04d).
	Seq     int             `json:"seq"`
	Episode Episode         `json:"episode"`
	Reasons []string        `json:"reasons"`
	Ramp    RampInfo        `json:"ramp"`
	Capture CaptureInfo     `json:"capture"`
	Files   []ManifestFile  `json:"files"`
	Summary ManifestSummary `json:"summary"`
}

// RampInfo records the sampling ramp the episode start performed.
type RampInfo struct {
	// To is the sample-every rate capture ramped to (1 = every packet).
	To int `json:"to"`
	// SenderFrom / ReceiverFrom are the steady-state rates restored at
	// episode end; 0 means that endpoint had no recorder attached.
	SenderFrom   int `json:"sender_from,omitempty"`
	ReceiverFrom int `json:"receiver_from,omitempty"`
}

// CaptureInfo counts what the bundle holds.
type CaptureInfo struct {
	PreEvents    int `json:"pre_events"`
	DuringEvents int `json:"during_events"`
	// PreOldestNanos is the oldest pre-trigger event's timestamp (0
	// when the ring held nothing) — proof of how far before the
	// trigger the bundle reaches.
	PreOldestNanos int64 `json:"pre_oldest_ns,omitempty"`
}

// ManifestFile is one member of the bundle directory.
type ManifestFile struct {
	// Name is the file's name inside the bundle directory — a bare
	// name, never a path.
	Name string `json:"name"`
	// Kind tags the content: "wir", "json", or "pprof".
	Kind string `json:"kind"`
	// Events is the MPDPWIR1 record count for wir files.
	Events int `json:"events,omitempty"`
}

// ManifestSummary is the operator's first read: the headline the merge
// layer computed from the episode's own events.
type ManifestSummary struct {
	Headline      string  `json:"headline"`
	DominantStage string  `json:"dominant_stage"`
	DominantFrac  float64 `json:"dominant_frac"`
	Delivered     int     `json:"delivered"`
	Lost          int     `json:"lost"`
}

// EncodeManifest writes m as stable, indented JSON: struct fields in
// declaration order, maps (none today) key-sorted by encoding/json —
// the byte-identity the determinism test pins.
func EncodeManifest(w io.Writer, m *Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// DecodeManifest reads and validates a manifest. Strict: unknown
// fields, version drift, impossible episode geometry, and unsafe file
// names are all errors, never best-effort guesses — an operator's
// tooling must not misread a bundle from a different build. This is the
// fuzz target.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("incident manifest: %w", err)
	}
	// Exactly one JSON document.
	if dec.More() {
		return nil, errors.New("incident manifest: trailing data after document")
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("incident manifest: version %q, this tool reads %q", m.Version, ManifestVersion)
	}
	if m.Seq < 1 {
		return nil, fmt.Errorf("incident manifest: seq %d < 1", m.Seq)
	}
	ep := m.Episode
	if ep.StartNanos > ep.TriggerNanos || ep.TriggerNanos > ep.EndNanos {
		return nil, fmt.Errorf("incident manifest: episode out of order (start %d, trigger %d, end %d)",
			ep.StartNanos, ep.TriggerNanos, ep.EndNanos)
	}
	if ep.Ticks < 1 {
		return nil, fmt.Errorf("incident manifest: episode ticks %d < 1", ep.Ticks)
	}
	if m.Ramp.To < 1 {
		return nil, fmt.Errorf("incident manifest: ramp target %d < 1", m.Ramp.To)
	}
	if m.Capture.PreEvents < 0 || m.Capture.DuringEvents < 0 {
		return nil, errors.New("incident manifest: negative event count")
	}
	for _, f := range m.Files {
		if f.Name == "" {
			return nil, errors.New("incident manifest: empty file name")
		}
		if f.Name != filepath.Base(f.Name) || strings.ContainsAny(f.Name, "/\\") || f.Name == ".." {
			return nil, fmt.Errorf("incident manifest: file name %q is not a bare name", f.Name)
		}
		switch f.Kind {
		case "wir", "json", "pprof":
		default:
			return nil, fmt.Errorf("incident manifest: file %q has unknown kind %q", f.Name, f.Kind)
		}
		if f.Events < 0 {
			return nil, fmt.Errorf("incident manifest: file %q has negative event count", f.Name)
		}
	}
	return &m, nil
}

// ReadManifest opens and decodes dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// Attribution is the bundle's merged stage-attribution document. The
// headline, per-path table, and verdict mix come from the FULL capture
// (pre-trigger history + episode) — detection necessarily lags the
// fluctuation it detects, often by more than a sub-tick burst lasts, so
// the packets that caused the trigger live in the pre window and the
// summary must see them. The before/during stage tables are separate
// merges for contrast: "what did each stage look like before vs during".
type Attribution struct {
	// Headline is the full-capture one-liner (which stage, what share).
	Headline string `json:"headline"`
	// Before and During are the per-stage latency tables from separate
	// merges of the pre-trigger and episode streams.
	Before []obs.WireStage `json:"before_stages"`
	During []obs.WireStage `json:"during_stages"`
	// Paths is the per-path table over the full capture.
	Paths []obs.WirePathStats `json:"paths"`
	// VerdictMix counts the full capture's delivered timelines by
	// scheduler verdict ("" → "plain"). Key-sorted on encode.
	VerdictMix map[string]int `json:"verdict_mix"`
}

// BuildAttribution merges the two captured streams into the bundle's
// attribution document; the returned merge is the full-capture join the
// manifest summary reads.
func BuildAttribution(pre, during []obs.WireEvent) (*Attribution, *obs.WireMerge) {
	beforeMerge := obs.MergeWire(pre)
	duringMerge := obs.MergeWire(during)
	full := obs.MergeWire(append(append([]obs.WireEvent(nil), pre...), during...))
	mix := map[string]int{}
	for _, tl := range full.Timelines {
		if tl.Lost {
			continue
		}
		key := obs.VerdictString(tl.SchedVerdict)
		if key == "" {
			key = "plain"
		}
		mix[key]++
	}
	return &Attribution{
		Headline:   full.Headline(),
		Before:     beforeMerge.Stages,
		During:     duringMerge.Stages,
		Paths:      full.Paths,
		VerdictMix: mix,
	}, full
}

// HealthChange is one path-health transition observed by the capture
// tick loop — the bundle's path-health timeline entry.
type HealthChange struct {
	Nanos       int64  `json:"t_ns"`
	Path        int    `json:"path"`
	From        string `json:"from,omitempty"` // empty on the first observation
	To          string `json:"to"`
	Quarantines int    `json:"quarantines"`
}

// BundleDirName returns the deterministic directory name for bundle seq.
func BundleDirName(seq int) string { return fmt.Sprintf("incident-%04d", seq) }

// bundleInput is everything writeBundle needs, gathered by the capture
// before any file I/O starts (no locks held while writing).
type bundleInput struct {
	seq    int
	ep     Episode
	ramp   RampInfo
	pre    []obs.WireEvent
	during []obs.WireEvent
	slo    json.RawMessage // pre-rendered SLO status, nil when untracked
	health []HealthChange
	cpu    []byte // pprof bytes, nil when profiling was off or failed
	heap   []byte
}

// writeBundle materialises one incident bundle under root and returns
// the bundle directory path. An existing directory of the same seq is
// overwritten — the name is deterministic by design, and a stale bundle
// from a dead run is worth less than the fresh episode.
func writeBundle(root string, in bundleInput) (string, error) {
	dir := filepath.Join(root, BundleDirName(in.seq))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	writeFile := func(name string, render func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close() //lint:allow erroreat render error wins
			return fmt.Errorf("incident %s: %w", name, err)
		}
		return f.Close()
	}
	writeJSON := func(name string, v any) error {
		return writeFile(name, func(w io.Writer) error {
			raw, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				return err
			}
			raw = append(raw, '\n')
			_, err = w.Write(raw)
			return err
		})
	}

	files := []ManifestFile{
		{Name: ManifestName, Kind: "json"},
		{Name: "pre.wir", Kind: "wir", Events: len(in.pre)},
		{Name: "during.wir", Kind: "wir", Events: len(in.during)},
		{Name: "attribution.json", Kind: "json"},
	}
	if err := writeFile("pre.wir", func(w io.Writer) error {
		return obs.WriteAllWire(w, in.pre)
	}); err != nil {
		return "", err
	}
	if err := writeFile("during.wir", func(w io.Writer) error {
		return obs.WriteAllWire(w, in.during)
	}); err != nil {
		return "", err
	}

	attr, fullMerge := BuildAttribution(in.pre, in.during)
	if err := writeJSON("attribution.json", attr); err != nil {
		return "", err
	}
	if in.slo != nil {
		files = append(files, ManifestFile{Name: "slo.json", Kind: "json"})
		if err := writeFile("slo.json", func(w io.Writer) error {
			_, err := w.Write(in.slo)
			return err
		}); err != nil {
			return "", err
		}
	}
	files = append(files, ManifestFile{Name: "pathhealth.json", Kind: "json"})
	if err := writeJSON("pathhealth.json", struct {
		Timeline []HealthChange `json:"timeline"`
	}{Timeline: in.health}); err != nil {
		return "", err
	}
	for _, p := range []struct {
		name string
		data []byte
	}{{"cpu.pprof", in.cpu}, {"heap.pprof", in.heap}} {
		if len(p.data) == 0 {
			continue
		}
		files = append(files, ManifestFile{Name: p.name, Kind: "pprof"})
		data := p.data
		if err := writeFile(p.name, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}); err != nil {
			return "", err
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })

	dom, frac := fullMerge.DominantStage()
	preOldest := int64(0)
	if len(in.pre) > 0 {
		preOldest = in.pre[0].Nanos
		for _, ev := range in.pre[1:] {
			if ev.Nanos < preOldest {
				preOldest = ev.Nanos
			}
		}
	}
	m := &Manifest{
		Version: ManifestVersion,
		Seq:     in.seq,
		Episode: in.ep,
		Reasons: ReasonNames(in.ep.Reason),
		Ramp:    in.ramp,
		Capture: CaptureInfo{
			PreEvents:      len(in.pre),
			DuringEvents:   len(in.during),
			PreOldestNanos: preOldest,
		},
		Files: files,
		Summary: ManifestSummary{
			Headline:      fullMerge.Headline(),
			DominantStage: dom,
			DominantFrac:  frac,
			Delivered:     fullMerge.Delivered,
			Lost:          fullMerge.Lost,
		},
	}
	if err := writeFile(ManifestName, func(w io.Writer) error {
		return EncodeManifest(w, m)
	}); err != nil {
		return "", err
	}
	return dir, nil
}
