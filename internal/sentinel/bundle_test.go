package sentinel

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpdp/internal/live"
	"mpdp/internal/obs"
	"mpdp/internal/transport"
)

func validManifest() *Manifest {
	return &Manifest{
		Version: ManifestVersion,
		Seq:     1,
		Episode: Episode{
			StartNanos: 100, TriggerNanos: 200, EndNanos: 900,
			Ticks: 9, Reason: TriggerP99, PeakP99: 5_000_000,
		},
		Reasons: []string{"p99"},
		Ramp:    RampInfo{To: 1, SenderFrom: 64, ReceiverFrom: 64},
		Capture: CaptureInfo{PreEvents: 12, DuringEvents: 40, PreOldestNanos: 10},
		Files: []ManifestFile{
			{Name: "during.wir", Kind: "wir", Events: 40},
			{Name: "manifest.json", Kind: "json"},
			{Name: "pre.wir", Kind: "wir", Events: 12},
		},
		Summary: ManifestSummary{
			Headline: "wire tail = 87% sender_queue", DominantStage: "sender_queue",
			DominantFrac: 0.87, Delivered: 10,
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := validManifest()
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mutated manifest:\n got %+v\nwant %+v", got, m)
	}
}

func TestDecodeManifestRejects(t *testing.T) {
	encode := func(mutate func(*Manifest)) string {
		m := validManifest()
		mutate(m)
		var buf bytes.Buffer
		if err := EncodeManifest(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := []struct {
		name string
		doc  string
	}{
		{"wrong version", encode(func(m *Manifest) { m.Version = "mpdp-incident/9" })},
		{"zero seq", encode(func(m *Manifest) { m.Seq = 0 })},
		{"trigger before start", encode(func(m *Manifest) { m.Episode.TriggerNanos = 50 })},
		{"end before trigger", encode(func(m *Manifest) { m.Episode.EndNanos = 150 })},
		{"zero ticks", encode(func(m *Manifest) { m.Episode.Ticks = 0 })},
		{"zero ramp", encode(func(m *Manifest) { m.Ramp.To = 0 })},
		{"path traversal name", encode(func(m *Manifest) { m.Files[0].Name = "../pre.wir" })},
		{"absolute name", encode(func(m *Manifest) { m.Files[0].Name = "/etc/passwd" })},
		{"empty name", encode(func(m *Manifest) { m.Files[0].Name = "" })},
		{"unknown kind", encode(func(m *Manifest) { m.Files[0].Kind = "tar" })},
		{"negative events", encode(func(m *Manifest) { m.Files[0].Events = -1 })},
		{"negative pre count", encode(func(m *Manifest) { m.Capture.PreEvents = -1 })},
		{"unknown field", strings.Replace(encode(func(m *Manifest) {}), `"seq"`, `"sequence"`, 1)},
		{"trailing data", encode(func(m *Manifest) {}) + "{}"},
		{"not json", "MPDPWIR1"},
		{"empty", ""},
	}
	for _, tc := range cases {
		if _, err := DecodeManifest(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// emitPacket records one complete packet lifecycle across both synthetic
// recorders: enqueue→tx on the sender, rx→deliver on the receiver, with
// queueNanos spent between enqueue and tx (the sender_queue stage).
func emitPacket(st, rt *obs.WireRecorder, flow, seq uint64, base, queueNanos int64) {
	st.Emit(obs.WireEvent{Nanos: base, Kind: obs.WireEnqueue, Path: -1, FlowID: flow, Seq: seq, A: 64})
	st.Emit(obs.WireEvent{Nanos: base, Kind: obs.WireSched, Path: 0, FlowID: flow, Seq: seq, A: 1})
	tx := base + queueNanos
	st.Emit(obs.WireEvent{Nanos: tx, Kind: obs.WireTx, Path: 0, FlowID: flow, Seq: seq, PathSeq: seq})
	rx := tx + 500_000
	rt.Emit(obs.WireEvent{Nanos: rx, Kind: obs.WireRx, Path: 0, FlowID: flow, Seq: seq, PathSeq: seq, A: base})
	rt.Emit(obs.WireEvent{Nanos: rx + 60_000, Kind: obs.WireDeliver, Path: 0, FlowID: flow, Seq: seq, PathSeq: seq,
		A: rx, B: rx + 50_000})
}

// scriptedRun drives a full capture lifecycle on an injected clock and a
// synthetic signal script, returning the bundle directory it wrote.
func scriptedRun(t *testing.T, dir string) string {
	t.Helper()
	hist := live.NewHistogram()
	st := obs.NewWireRecorder(obs.WireSender, 1024, 8)
	rt := obs.NewWireRecorder(obs.WireReceiver, 1024, 8)
	clock := int64(1_000_000_000)
	c, err := NewCapture(CaptureConfig{
		Detector:      Config{P99ThresholdNanos: 1_000_000, SuspectTicks: 2, ClearTicks: 2, CooldownTicks: 2},
		Dir:           dir,
		SenderTrace:   st,
		ReceiverTrace: rt,
		E2E:           hist,
		PathHealth: func() []transport.PathHealthSnap {
			// Path 1 degrades transiently mid-episode, keyed off the
			// injected clock — deterministic, and exercises both the
			// timeline and the path-health trigger bit.
			state := "up"
			if clock >= 1_400_000_000 && clock < 1_600_000_000 {
				state = "degraded"
			}
			return []transport.PathHealthSnap{{Path: 0, State: "up"}, {Path: 1, State: state, Quarantines: 1}}
		},
		Now: func() int64 { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}

	seq := uint64(0)
	tick := func(fast, slow int) {
		clock += 100_000_000
		for i := 0; i < fast; i++ {
			seq++
			emitPacket(st, rt, 7, seq, clock+int64(i)*10_000, 100_000)
			hist.Record(700_000)
		}
		for i := 0; i < slow; i++ {
			seq++
			emitPacket(st, rt, 7, seq, clock+int64(i)*10_000, 4_000_000)
			hist.Record(4_600_000)
		}
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	tick(20, 0) // quiet baseline
	tick(20, 0)
	tick(2, 20) // breach → suspect
	tick(2, 20) // breach → episode (start = previous tick)
	tick(2, 20) // episode continues
	tick(20, 0) // clear 1
	tick(20, 0) // clear 2 → end, bundle written

	bundles := c.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("wrote %d bundles, want 1 (state %v)", len(bundles), c.State())
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return bundles[0]
}

func TestCaptureWritesCompleteBundle(t *testing.T) {
	dir := scriptedRun(t, t.TempDir())
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 1 || filepath.Base(dir) != BundleDirName(1) {
		t.Fatalf("bundle %q has seq %d", dir, m.Seq)
	}
	if m.Episode.StartNanos >= m.Episode.TriggerNanos {
		t.Fatalf("start %d should precede trigger %d (suspect tick is the onset)",
			m.Episode.StartNanos, m.Episode.TriggerNanos)
	}
	if got := m.Reasons; len(got) != 2 || got[0] != "p99" || got[1] != "path-health" {
		t.Fatalf("reasons %v, want [p99 path-health]", got)
	}
	if m.Ramp.To != 1 || m.Ramp.SenderFrom != 8 || m.Ramp.ReceiverFrom != 8 {
		t.Fatalf("ramp %+v, want to=1 from=8/8", m.Ramp)
	}

	// Pre-trigger history: present, and timestamped before the trigger.
	if m.Capture.PreEvents == 0 {
		t.Fatal("bundle has no pre-trigger events")
	}
	if m.Capture.PreOldestNanos >= m.Episode.TriggerNanos {
		t.Fatalf("oldest pre event %d not before trigger %d",
			m.Capture.PreOldestNanos, m.Episode.TriggerNanos)
	}
	pre := readWir(t, dir, "pre.wir")
	if len(pre) != m.Capture.PreEvents {
		t.Fatalf("pre.wir holds %d events, manifest says %d", len(pre), m.Capture.PreEvents)
	}
	early := 0
	for _, ev := range pre {
		if ev.Nanos < m.Episode.StartNanos {
			early++
		}
	}
	if early == 0 {
		t.Fatal("no pre.wir event predates episode start — ring history was not preserved")
	}

	// Episode events: the slow packets, attributed to sender_queue.
	during := readWir(t, dir, "during.wir")
	if len(during) != m.Capture.DuringEvents || len(during) == 0 {
		t.Fatalf("during.wir holds %d events, manifest says %d", len(during), m.Capture.DuringEvents)
	}
	if m.Summary.DominantStage != "sender_queue" {
		t.Fatalf("dominant stage %q, want sender_queue", m.Summary.DominantStage)
	}

	// The health timeline recorded path 1's degradation.
	raw, err := os.ReadFile(filepath.Join(dir, "pathhealth.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"degraded"`)) {
		t.Fatalf("pathhealth.json missing the degraded transition: %s", raw)
	}

	// Every manifest file entry exists on disk, and nothing else does.
	names := map[string]bool{}
	for _, f := range m.Files {
		names[f.Name] = true
		if _, err := os.Stat(filepath.Join(dir, f.Name)); err != nil {
			t.Errorf("manifest names %s but: %v", f.Name, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !names[e.Name()] {
			t.Errorf("bundle contains %s, not in manifest", e.Name())
		}
	}
}

func readWir(t *testing.T, dir, name string) []obs.WireEvent {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadAllWire(f)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// The determinism pin: identical injected-clock signal streams must
// yield byte-identical bundles — manifest and every JSON/wir member.
func TestBundleManifestDeterminism(t *testing.T) {
	a := scriptedRun(t, t.TempDir())
	b := scriptedRun(t, t.TempDir())
	for _, name := range []string{ManifestName, "attribution.json", "pathhealth.json", "pre.wir", "during.wir"} {
		ra, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ra, rb) {
			t.Errorf("%s differs across identical runs:\n--- a ---\n%s\n--- b ---\n%s", name, ra, rb)
		}
	}
}

func TestCaptureCloseForceEndsEpisode(t *testing.T) {
	dir := t.TempDir()
	hist := live.NewHistogram()
	st := obs.NewWireRecorder(obs.WireSender, 256, 1)
	clock := int64(1_000_000_000)
	c, err := NewCapture(CaptureConfig{
		Detector:    Config{P99ThresholdNanos: 1_000_000, SuspectTicks: 1},
		Dir:         dir,
		SenderTrace: st,
		E2E:         hist,
		Now:         func() int64 { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	hist.Record(9_000_000)
	clock += 100_000_000
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateEpisode {
		t.Fatalf("state %v, want an open episode", c.State())
	}
	st.Emit(obs.WireEvent{Nanos: clock, Kind: obs.WireEnqueue, FlowID: 1, Seq: 1, Path: -1})
	clock += 100_000_000
	bundles, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("Close wrote %d bundles, want 1", len(bundles))
	}
	m, err := ReadManifest(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if !m.Episode.Truncated {
		t.Fatal("force-ended episode not marked truncated")
	}
}

func TestNewCaptureValidation(t *testing.T) {
	hist := live.NewHistogram()
	rec := obs.NewWireRecorder(obs.WireSender, 16, 1)
	if _, err := NewCapture(CaptureConfig{SenderTrace: rec, E2E: hist}); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := NewCapture(CaptureConfig{Dir: "x", SenderTrace: rec}); err == nil {
		t.Error("missing histogram accepted")
	}
	if _, err := NewCapture(CaptureConfig{Dir: "x", E2E: hist}); err == nil {
		t.Error("missing recorders accepted")
	}
}
