package sentinel

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpdp/internal/live"
	"mpdp/internal/obs"
	"mpdp/internal/transport"
)

// CaptureConfig wires the detector to a live transport run.
type CaptureConfig struct {
	// Detector tunes the episode state machine.
	Detector Config
	// Dir is where incident bundles are written (required).
	Dir string
	// RampTo is the sample-every rate during an episode (default 1:
	// capture every packet while it hurts).
	RampTo int
	// SenderTrace / ReceiverTrace are the endpoints' wire recorders —
	// ramped on episode start, snapshotted into the bundle. At least
	// one is required: a sentinel with nothing to capture is a no-op.
	SenderTrace   *obs.WireRecorder
	ReceiverTrace *obs.WireRecorder
	// E2E is the end-to-end latency histogram whose windowed p99 feeds
	// the detector (required).
	E2E *live.Histogram
	// SLO, when non-nil, contributes the burn-rate trigger and its
	// status document to the bundle. The capture ticks it (SLOTracker
	// throttles ring pushes internally, so an extra ticker is harmless).
	SLO *live.SLOTracker
	// PathHealth, when non-nil, is polled each tick for the path-health
	// trigger and the bundle's transition timeline.
	PathHealth func() []transport.PathHealthSnap
	// Profile, when non-nil, grabs pprof CPU/heap windows from a debug
	// listener at episode start.
	Profile *ProfileGrabber
	// Now is the capture's clock in unix nanoseconds; defaults to the
	// wall clock. Tests inject it, which — with the detector's injected
	// Sample stream — makes bundle manifests byte-reproducible.
	Now func() int64
}

// Capture runs the sentinel against a live run: gather signals, drive
// the detector, and perform the episode side effects (ramp, snapshot,
// profile, bundle). One driver goroutine calls Tick/Run/Close; Bundles
// and Err are safe from anywhere.
type Capture struct {
	cfg CaptureConfig
	det *Detector

	prevHist   *live.HistSnapshot
	lastHealth map[int]string
	timeline   []HealthChange

	// Open-episode capture state, valid between TransStart and TransEnd.
	pre     []obs.WireEvent
	markS   uint64
	markR   uint64
	prevEvS int
	prevEvR int
	profCh  chan profileResult
	seq     int

	mu      sync.Mutex // guards bundles and lastErr only
	bundles []string
	lastErr error
}

// NewCapture validates cfg and builds a capture.
func NewCapture(cfg CaptureConfig) (*Capture, error) {
	if cfg.Dir == "" {
		return nil, errors.New("sentinel: capture needs a bundle directory")
	}
	if cfg.E2E == nil {
		return nil, errors.New("sentinel: capture needs an e2e histogram to watch")
	}
	if cfg.SenderTrace == nil && cfg.ReceiverTrace == nil {
		return nil, errors.New("sentinel: capture needs at least one wire recorder to ramp")
	}
	if cfg.RampTo <= 0 {
		cfg.RampTo = 1
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	return &Capture{
		cfg:        cfg,
		det:        NewDetector(cfg.Detector),
		lastHealth: map[int]string{},
	}, nil
}

// State exposes the detector's current state (for status lines).
func (c *Capture) State() State { return c.det.State() }

// Bundles returns the paths of every bundle written so far.
func (c *Capture) Bundles() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.bundles...)
}

// Err returns the most recent bundle-write error, if any.
func (c *Capture) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Tick gathers one tick of signals, feeds the detector, and performs
// any episode side effects. Driver-goroutine only.
func (c *Capture) Tick() error {
	now := c.cfg.Now()

	snap := c.cfg.E2E.Snapshot()
	win := snap
	if c.prevHist != nil {
		win = snap.Delta(c.prevHist)
	}
	c.prevHist = snap
	p99 := int64(-1)
	if win.NCount > 0 {
		p99 = win.Quantile(0.99)
	}

	crit := false
	if t := c.cfg.SLO; t != nil {
		t.Tick()
		st, _ := t.State()
		crit = st == live.SLOCritical
	}

	unhealthy := 0
	if c.cfg.PathHealth != nil {
		for _, h := range c.cfg.PathHealth() {
			if h.State != "up" {
				unhealthy++
			}
			if c.lastHealth[h.Path] != h.State {
				c.timeline = append(c.timeline, HealthChange{
					Nanos: now, Path: h.Path,
					From: c.lastHealth[h.Path], To: h.State,
					Quarantines: h.Quarantines,
				})
				c.lastHealth[h.Path] = h.State
			}
		}
	}

	trans, ep := c.det.Observe(Sample{
		Nanos: now, P99: p99, SLOCritical: crit, UnhealthyPaths: unhealthy,
	})
	switch trans {
	case TransStart:
		c.onStart()
	case TransEnd:
		return c.finish(ep)
	}
	return nil
}

// onStart performs the episode-start side effects: snapshot the rings'
// pre-trigger history, ramp both recorders to the episode rate, and
// kick off the profile grab. Nothing here blocks: ring snapshots are a
// bounded copy, the ramp is one atomic swap per endpoint, and the
// profile fetch runs on its own goroutine.
func (c *Capture) onStart() {
	c.pre = c.pre[:0]
	if st := c.cfg.SenderTrace; st != nil {
		evs, mark := st.SnapshotSince(0)
		c.pre = append(c.pre, evs...)
		c.markS = mark
		c.prevEvS = st.SetSampleEvery(c.cfg.RampTo)
	}
	if rt := c.cfg.ReceiverTrace; rt != nil {
		evs, mark := rt.SnapshotSince(0)
		c.pre = append(c.pre, evs...)
		c.markR = mark
		c.prevEvR = rt.SetSampleEvery(c.cfg.RampTo)
	}
	if g := c.cfg.Profile; g != nil {
		ch := make(chan profileResult, 1)
		c.profCh = ch
		go g.grab(ch)
	}
}

// finish performs the episode-end side effects: fetch exactly the
// episode's events, restore the steady-state sample rates, collect the
// profile if it landed, and write the bundle.
func (c *Capture) finish(ep Episode) error {
	var during []obs.WireEvent
	ramp := RampInfo{To: c.cfg.RampTo}
	if st := c.cfg.SenderTrace; st != nil {
		evs, _ := st.SnapshotSince(c.markS)
		during = append(during, evs...)
		st.SetSampleEvery(c.prevEvS)
		ramp.SenderFrom = c.prevEvS
	}
	if rt := c.cfg.ReceiverTrace; rt != nil {
		evs, _ := rt.SnapshotSince(c.markR)
		during = append(during, evs...)
		rt.SetSampleEvery(c.prevEvR)
		ramp.ReceiverFrom = c.prevEvR
	}

	var cpu, heap []byte
	if c.profCh != nil {
		if res := collectProfile(c.profCh, c.cfg.Profile.waitBudget()); res != nil {
			cpu, heap = res.cpu, res.heap
		}
		c.profCh = nil
	}

	var slo json.RawMessage
	if t := c.cfg.SLO; t != nil {
		raw, err := json.MarshalIndent(t.Status(), "", "  ")
		if err == nil {
			slo = append(raw, '\n')
		}
	}

	c.seq++
	dir, err := writeBundle(c.cfg.Dir, bundleInput{
		seq:    c.seq,
		ep:     ep,
		ramp:   ramp,
		pre:    append([]obs.WireEvent(nil), c.pre...),
		during: during,
		slo:    slo,
		health: append([]HealthChange(nil), c.timeline...),
		cpu:    cpu,
		heap:   heap,
	})
	c.pre = nil
	c.mu.Lock()
	if err != nil {
		c.lastErr = fmt.Errorf("sentinel: bundle %d: %w", c.seq, err)
		err = c.lastErr
	} else {
		c.bundles = append(c.bundles, dir)
	}
	c.mu.Unlock()
	return err
}

// Run drives Tick on a ticker until stop closes. Bundle-write errors
// are retained (Err) rather than aborting the loop: one failed write
// must not stop detection of the next episode.
func (c *Capture) Run(every time.Duration, stop <-chan struct{}) {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Tick() //lint:allow erroreat retained in lastErr; the loop must outlive one bad write
		}
	}
}

// Close force-ends an open episode (a run tearing down mid-episode
// still yields its bundle) and returns every bundle path written. Call
// after the Run loop has stopped.
func (c *Capture) Close() ([]string, error) {
	if ep, open := c.det.ForceEnd(c.cfg.Now()); open {
		if err := c.finish(ep); err != nil {
			return c.Bundles(), err
		}
	}
	return c.Bundles(), c.Err()
}
