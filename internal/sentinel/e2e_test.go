package sentinel

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpdp/internal/obs"
	"mpdp/internal/transport"
)

// The end-to-end claim: a real loopback run under episodic burst
// impairment (the paper's last-mile fluctuation shape) produces an
// incident bundle whose pre-trigger ring reaches back before the
// episode started and whose top attributed stage is sender_queue — the
// stage the burst delay actually lands in (E23/E24).
func TestSentinelLoopbackBurstEpisode(t *testing.T) {
	dir := t.TempDir()
	st := obs.NewWireRecorder(obs.WireSender, 1<<15, 4)
	rt := obs.NewWireRecorder(obs.WireReceiver, 1<<15, 4)
	spans := transport.NewSpans(nil)

	var c *Capture
	stop := make(chan struct{})
	done := make(chan struct{})
	rep, err := transport.RunLoopback(transport.LoopbackConfig{
		Packets:   4000,
		Rate:      5000,
		Paths:     2,
		Payload:   64,
		Scheduler: transport.SchedRoundRobin,
		Spans:     spans,
		Impairer: transport.NewBurstImpairer(transport.BurstImpairConfig{
			Path:   0,
			Period: 2000,
			Length: 250,
			Delay:  3 * time.Millisecond,
		}),
		SenderTrace:   st,
		ReceiverTrace: rt,
		OnStart: func(send *transport.Sender, recv *transport.Receiver) {
			var err error
			c, err = NewCapture(CaptureConfig{
				Detector: Config{
					P99ThresholdNanos: (1500 * time.Microsecond).Nanoseconds(),
					SuspectTicks:      1,
					ClearTicks:        4,
					CooldownTicks:     3,
				},
				Dir:           dir,
				SenderTrace:   st,
				ReceiverTrace: rt,
				E2E:           spans.E2E,
				PathHealth:    send.HealthSnapshot,
			})
			if err != nil {
				t.Error(err)
				close(done)
				return
			}
			go func() {
				defer close(done)
				c.Run(30*time.Millisecond, stop)
			}()
		},
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if verr := rep.Verify(); verr != nil {
		t.Fatal(verr)
	}
	if c == nil {
		t.Fatal("OnStart never ran")
	}
	bundles, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatalf("burst run produced no incident bundle (detector state %v)", c.State())
	}

	m, err := ReadManifest(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	// The ramp fired and restored: episode capture ran at every-packet,
	// steady state was 4.
	if m.Ramp.To != 1 || m.Ramp.SenderFrom != 4 || m.Ramp.ReceiverFrom != 4 {
		t.Errorf("ramp %+v, want to=1 from=4/4", m.Ramp)
	}
	if st.SampleEvery() != 4 || rt.SampleEvery() != 4 {
		t.Errorf("steady rate not restored: sender %d receiver %d", st.SampleEvery(), rt.SampleEvery())
	}

	// Pre-trigger history reaches back before the episode started.
	if m.Capture.PreEvents == 0 {
		t.Fatal("bundle holds no pre-trigger events")
	}
	pre := readWir(t, bundles[0], "pre.wir")
	early := 0
	for _, ev := range pre {
		if ev.Nanos < m.Episode.StartNanos {
			early++
		}
	}
	if early == 0 {
		t.Fatalf("none of %d pre.wir events predate episode start %d", len(pre), m.Episode.StartNanos)
	}

	// The burst's 3ms path-0 delay is a sender-side queue effect: the
	// delayed frame leaves the socket late, so tx−enq absorbs it and the
	// full-capture attribution must name sender_queue.
	if m.Summary.DominantStage != "sender_queue" {
		t.Fatalf("dominant stage %q (headline %q), want sender_queue",
			m.Summary.DominantStage, m.Summary.Headline)
	}
	if m.Summary.Delivered == 0 {
		t.Fatal("bundle merged zero delivered timelines")
	}

	// The bundle parses end to end with the strict reader — every wir
	// stream decodes, attribution is well-formed JSON.
	for _, f := range m.Files {
		fi, err := os.Stat(filepath.Join(bundles[0], f.Name))
		if err != nil {
			t.Errorf("manifest file %s: %v", f.Name, err)
			continue
		}
		if f.Kind == "wir" {
			if evs := readWir(t, bundles[0], f.Name); len(evs) != f.Events {
				t.Errorf("%s: %d events, manifest says %d", f.Name, len(evs), f.Events)
			}
		}
		if fi.Size() == 0 && f.Kind != "wir" {
			t.Errorf("manifest file %s is empty", f.Name)
		}
	}
}
