package sentinel

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzManifestDecode hammers the strict manifest decoder: it must never
// panic, and anything it accepts must survive a re-encode/re-decode
// round trip unchanged — the property that makes `mpdp-inspect
// -incident` safe to point at an untrusted bundle.
func FuzzManifestDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeManifest(&seed, validManifest()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version":"mpdp-incident/1","seq":1}`))
	f.Add([]byte(`{"version":"mpdp-incident/2"}`))
	f.Add([]byte(`{"files":[{"name":"../../x","kind":"wir"}]}`))
	f.Add([]byte(`{"episode":{"start_ns":9,"trigger_ns":1,"end_ns":5}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{}{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeManifest(&out, m); err != nil {
			t.Fatalf("accepted manifest failed to re-encode: %v", err)
		}
		m2, err := DecodeManifest(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v\n%s", err, out.Bytes())
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mutated manifest:\n got %+v\nwant %+v", m2, m)
		}
	})
}
