package sentinel

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// ProfileGrabber fetches pprof CPU and heap windows from a debug
// listener (live.DebugHandler, or anything serving net/http/pprof) when
// an episode starts — the "what was the process doing while the tail
// was burning" half of the bundle. Strictly best-effort: a missing or
// slow listener degrades the bundle, never the capture.
type ProfileGrabber struct {
	// BaseURL is the debug listener root, e.g. "http://127.0.0.1:6060".
	BaseURL string
	// CPUSeconds is the CPU profile window (default 1).
	CPUSeconds int
	// Client overrides the HTTP client (tests); default has a timeout
	// sized to the CPU window.
	Client *http.Client
}

// profileResult carries the grab's outcome to the bundle writer.
type profileResult struct {
	cpu, heap []byte
	err       error
}

func (g *ProfileGrabber) cpuSeconds() int {
	if g.CPUSeconds <= 0 {
		return 1
	}
	return g.CPUSeconds
}

// waitBudget is how long the bundle writer will wait for an in-flight
// grab: the CPU window plus slack for the two fetches. Bounded — a hung
// listener costs one budget, not a wedged capture loop.
func (g *ProfileGrabber) waitBudget() time.Duration {
	return time.Duration(g.cpuSeconds())*time.Second + 3*time.Second
}

func (g *ProfileGrabber) client() *http.Client {
	if g.Client != nil {
		return g.Client
	}
	return &http.Client{Timeout: g.waitBudget()}
}

// grab fetches heap first (cheap, instantaneous — the state at episode
// start) then the CPU window (blocks CPUSeconds while the profiler
// samples the episode itself), and delivers the result. Runs on its own
// goroutine; ch is buffered so a bundle writer that gave up waiting
// doesn't leak this goroutine.
func (g *ProfileGrabber) grab(ch chan<- profileResult) {
	var res profileResult
	res.heap, res.err = g.fetch("/debug/pprof/heap", nil)
	cpu, err := g.fetch("/debug/pprof/profile", url.Values{
		"seconds": []string{fmt.Sprint(g.cpuSeconds())},
	})
	res.cpu = cpu
	if res.err == nil {
		res.err = err
	}
	ch <- res
}

func (g *ProfileGrabber) fetch(path string, q url.Values) ([]byte, error) {
	u := g.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := g.client().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("pprof %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// collectProfile waits up to budget for an in-flight grab. A timeout or
// grab error yields nil: the bundle simply omits the profiles.
func collectProfile(ch <-chan profileResult, budget time.Duration) *profileResult {
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil && len(res.cpu) == 0 && len(res.heap) == 0 {
			return nil
		}
		return &res
	case <-timer.C:
		return nil
	}
}
