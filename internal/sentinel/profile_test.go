package sentinel

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestProfileGrabber(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/debug/pprof/heap":
			w.Write([]byte("HEAPDATA"))
		case "/debug/pprof/profile":
			if r.URL.Query().Get("seconds") != "1" {
				http.Error(w, "bad seconds", http.StatusBadRequest)
				return
			}
			w.Write([]byte("CPUDATA"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	g := &ProfileGrabber{BaseURL: srv.URL}
	ch := make(chan profileResult, 1)
	go g.grab(ch)
	res := collectProfile(ch, g.waitBudget())
	if res == nil {
		t.Fatal("grab returned nothing")
	}
	if string(res.heap) != "HEAPDATA" || string(res.cpu) != "CPUDATA" {
		t.Fatalf("grab got heap=%q cpu=%q", res.heap, res.cpu)
	}
}

// A dead listener degrades to no profiles, never an error that blocks
// the bundle.
func TestProfileGrabberDeadListener(t *testing.T) {
	g := &ProfileGrabber{BaseURL: "http://127.0.0.1:1", CPUSeconds: 1}
	ch := make(chan profileResult, 1)
	go g.grab(ch)
	if res := collectProfile(ch, 5*time.Second); res != nil {
		t.Fatalf("dead listener yielded %+v, want nil", res)
	}
}

// A wedged listener costs at most the wait budget.
func TestCollectProfileTimeout(t *testing.T) {
	ch := make(chan profileResult) // never written
	start := time.Now()
	if res := collectProfile(ch, 50*time.Millisecond); res != nil {
		t.Fatalf("timeout yielded %+v", res)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("collectProfile did not respect its budget")
	}
}
