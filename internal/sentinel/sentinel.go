// Package sentinel is the online tail-episode detector: the layer that
// turns the repo's recorders into an operable system. The paper's
// premise is that last-mile tail latency arrives in short transient
// episodes that are gone before anyone attaches a profiler; the
// sentinel watches cheap always-on signals (windowed latency quantiles,
// SLO burn state, path-health transitions), and the instant an episode
// starts it ramps the wire flight recorders to full capture, snapshots
// the pre-trigger ring history, and — when the episode ends — writes a
// self-contained incident bundle an operator can open cold.
//
// The detector itself is a deterministic injected-clock state machine
// with hysteresis:
//
//	quiet → suspect → episode → cooldown → quiet
//
// Suspect absorbs single-tick flaps (SuspectTicks consecutive breaching
// ticks confirm an episode), ClearTicks consecutive clean ticks end
// one, and Cooldown refuses re-triggering right after an episode so a
// ringing signal yields one bundle, not ten.
package sentinel

// State is the detector's position in the episode lifecycle.
type State int

const (
	// StateQuiet: no breach observed; capture runs at its cheap rate.
	StateQuiet State = iota
	// StateSuspect: breaching, awaiting confirmation (hysteresis up).
	StateSuspect
	// StateEpisode: a confirmed episode is in progress; capture ramped.
	StateEpisode
	// StateCooldown: an episode just closed; triggers are ignored.
	StateCooldown
)

func (s State) String() string {
	switch s {
	case StateQuiet:
		return "quiet"
	case StateSuspect:
		return "suspect"
	case StateEpisode:
		return "episode"
	case StateCooldown:
		return "cooldown"
	default:
		return "state(?)"
	}
}

// Trigger reason bits: which signal(s) breached. An episode accumulates
// every reason observed across its life.
const (
	// TriggerP99: the windowed p99 crossed the configured threshold.
	TriggerP99 = 1 << iota
	// TriggerBurn: the SLO tracker entered its critical burn state.
	TriggerBurn
	// TriggerPathHealth: at least one path left the "up" state.
	TriggerPathHealth
)

// ReasonNames renders trigger reason bits, stable order.
func ReasonNames(reason int) []string {
	var out []string
	if reason&TriggerP99 != 0 {
		out = append(out, "p99")
	}
	if reason&TriggerBurn != 0 {
		out = append(out, "burn")
	}
	if reason&TriggerPathHealth != 0 {
		out = append(out, "path-health")
	}
	return out
}

// Config tunes the detector. Zero values take the documented defaults;
// P99ThresholdNanos ≤ 0 disables the latency trigger entirely (burn and
// path-health triggers still fire).
type Config struct {
	// P99ThresholdNanos breaches when the tick window's p99 exceeds it.
	P99ThresholdNanos int64
	// SuspectTicks is how many consecutive breaching ticks confirm an
	// episode (default 2; 1 = trigger on first breach).
	SuspectTicks int
	// ClearTicks is how many consecutive clean ticks end an episode
	// (default 3).
	ClearTicks int
	// CooldownTicks is how long after an episode ends triggers are
	// ignored (default 5).
	CooldownTicks int
	// MaxEpisodeTicks bounds an episode's length: a breach that never
	// clears still yields a bundle instead of capturing forever
	// (default 600).
	MaxEpisodeTicks int
}

func (c Config) withDefaults() Config {
	if c.SuspectTicks <= 0 {
		c.SuspectTicks = 2
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 3
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 5
	}
	if c.MaxEpisodeTicks <= 0 {
		c.MaxEpisodeTicks = 600
	}
	return c
}

// Sample is one tick's worth of signals, gathered by the caller on its
// clock. The detector never reads a clock itself — Nanos is injected,
// which is what makes the state machine deterministic under test.
type Sample struct {
	// Nanos is the tick's timestamp on the caller's clock.
	Nanos int64
	// P99 is the tick window's p99 latency in nanoseconds; -1 means the
	// window saw no traffic, which counts as a clean tick (an idle wire
	// has no tail).
	P99 int64
	// SLOCritical is the burn-rate tracker's critical verdict.
	SLOCritical bool
	// UnhealthyPaths counts paths whose health state is not "up".
	UnhealthyPaths int
}

// Episode describes one confirmed tail episode. All values derive from
// the injected Sample stream, so identical streams yield identical
// episodes.
type Episode struct {
	// StartNanos is the first breaching tick (the suspect entry) — the
	// episode's true onset, before confirmation.
	StartNanos int64 `json:"start_ns"`
	// TriggerNanos is the confirming tick: when capture ramped.
	TriggerNanos int64 `json:"trigger_ns"`
	// EndNanos is the tick that closed the episode.
	EndNanos int64 `json:"end_ns"`
	// Ticks counts every tick from first breach through close.
	Ticks int `json:"ticks"`
	// Reason accumulates every Trigger* bit observed.
	Reason int `json:"reason"`
	// PeakP99 is the worst windowed p99 seen during the episode.
	PeakP99 int64 `json:"peak_p99_ns"`
	// Truncated marks an episode closed by MaxEpisodeTicks or ForceEnd
	// rather than by the signal clearing.
	Truncated bool `json:"truncated,omitempty"`
}

// Transition is Observe's verdict for one tick.
type Transition int

const (
	// TransNone: no boundary crossed this tick.
	TransNone Transition = iota
	// TransStart: an episode was confirmed this tick — ramp capture.
	TransStart
	// TransEnd: the episode closed this tick — write the bundle.
	TransEnd
)

// Detector is the injected-clock episode state machine. Not
// goroutine-safe: one driver feeds Observe (the capture tick loop, or a
// test).
type Detector struct {
	cfg      Config
	state    State
	suspect  int // consecutive breaching ticks while confirming
	clear    int // consecutive clean ticks while in episode
	cooldown int // ticks left in cooldown
	cur      Episode
}

// NewDetector builds a detector with cfg's defaults applied.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// State returns the machine's current state.
func (d *Detector) State() State { return d.state }

// Observe feeds one tick of signals and reports whether an episode
// boundary was crossed; the Episode value is meaningful only when the
// transition is TransStart or TransEnd. Pure state-machine arithmetic —
// safe to run at any tick rate with zero steady-state cost.
//
//mpdp:hotpath bench=BenchmarkDetectorObserve
func (d *Detector) Observe(s Sample) (Transition, Episode) {
	reason := 0
	if d.cfg.P99ThresholdNanos > 0 && s.P99 > d.cfg.P99ThresholdNanos {
		reason |= TriggerP99
	}
	if s.SLOCritical {
		reason |= TriggerBurn
	}
	if s.UnhealthyPaths > 0 {
		reason |= TriggerPathHealth
	}

	switch d.state {
	case StateQuiet:
		if reason == 0 {
			return TransNone, Episode{}
		}
		d.cur = Episode{StartNanos: s.Nanos, Reason: reason, PeakP99: s.P99, Ticks: 1}
		d.suspect = 1
		if d.suspect >= d.cfg.SuspectTicks {
			d.state = StateEpisode
			d.cur.TriggerNanos = s.Nanos
			d.clear = 0
			return TransStart, d.cur
		}
		d.state = StateSuspect
		return TransNone, Episode{}

	case StateSuspect:
		if reason == 0 {
			// A flap: the breach did not sustain. Back to quiet with no
			// episode — this is the hysteresis that keeps a single slow
			// tick from producing a bundle.
			d.state = StateQuiet
			return TransNone, Episode{}
		}
		d.suspect++
		d.cur.Ticks++
		d.cur.Reason |= reason
		if s.P99 > d.cur.PeakP99 {
			d.cur.PeakP99 = s.P99
		}
		if d.suspect >= d.cfg.SuspectTicks {
			d.state = StateEpisode
			d.cur.TriggerNanos = s.Nanos
			d.clear = 0
			return TransStart, d.cur
		}
		return TransNone, Episode{}

	case StateEpisode:
		d.cur.Ticks++
		d.cur.Reason |= reason
		if s.P99 > d.cur.PeakP99 {
			d.cur.PeakP99 = s.P99
		}
		if reason == 0 {
			d.clear++
		} else {
			d.clear = 0
		}
		if d.clear >= d.cfg.ClearTicks || d.cur.Ticks >= d.cfg.MaxEpisodeTicks {
			d.cur.EndNanos = s.Nanos
			d.cur.Truncated = d.clear < d.cfg.ClearTicks
			d.state = StateCooldown
			d.cooldown = d.cfg.CooldownTicks
			return TransEnd, d.cur
		}
		return TransNone, Episode{}

	case StateCooldown:
		d.cooldown--
		if d.cooldown <= 0 {
			d.state = StateQuiet
		}
		return TransNone, Episode{}
	}
	return TransNone, Episode{}
}

// ForceEnd closes an in-progress episode at nanos — the run-teardown
// path, so a process exiting mid-episode still writes its bundle. The
// second return is false when no episode was open.
func (d *Detector) ForceEnd(nanos int64) (Episode, bool) {
	if d.state != StateEpisode {
		return Episode{}, false
	}
	d.cur.EndNanos = nanos
	d.cur.Truncated = true
	d.state = StateCooldown
	d.cooldown = d.cfg.CooldownTicks
	return d.cur, true
}
