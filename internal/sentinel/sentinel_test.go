package sentinel

import (
	"testing"
)

func breach(nanos int64) Sample { return Sample{Nanos: nanos, P99: 5_000_000} }
func clean(nanos int64) Sample  { return Sample{Nanos: nanos, P99: 200_000} }

func testConfig() Config {
	return Config{P99ThresholdNanos: 1_000_000, SuspectTicks: 2, ClearTicks: 3, CooldownTicks: 2}
}

// A single breaching tick that does not sustain must not produce an
// episode — that is the whole point of the suspect state.
func TestDetectorFlapDoesNotTrigger(t *testing.T) {
	d := NewDetector(testConfig())
	if tr, _ := d.Observe(breach(100)); tr != TransNone {
		t.Fatalf("first breach transitioned %v, want none", tr)
	}
	if d.State() != StateSuspect {
		t.Fatalf("state %v after first breach, want suspect", d.State())
	}
	if tr, _ := d.Observe(clean(200)); tr != TransNone {
		t.Fatalf("flap clear transitioned %v, want none", tr)
	}
	if d.State() != StateQuiet {
		t.Fatalf("state %v after flap, want quiet", d.State())
	}
}

func TestDetectorEpisodeLifecycle(t *testing.T) {
	d := NewDetector(testConfig())

	// Two consecutive breaches confirm.
	d.Observe(breach(100))
	tr, ep := d.Observe(Sample{Nanos: 200, P99: 9_000_000, UnhealthyPaths: 1})
	if tr != TransStart {
		t.Fatalf("second breach transitioned %v, want start", tr)
	}
	if ep.StartNanos != 100 || ep.TriggerNanos != 200 {
		t.Fatalf("episode start=%d trigger=%d, want 100/200 (start is the FIRST breach)", ep.StartNanos, ep.TriggerNanos)
	}
	if ep.Reason != TriggerP99|TriggerPathHealth {
		t.Fatalf("reason %b, want p99|path-health accumulated", ep.Reason)
	}

	// Sustained breaches keep it open; a clear run shorter than
	// ClearTicks does not close it.
	d.Observe(breach(300))
	d.Observe(clean(400))
	d.Observe(clean(500))
	if tr, _ := d.Observe(breach(600)); tr != TransNone || d.State() != StateEpisode {
		t.Fatalf("re-breach inside clear run: trans %v state %v, want open episode", tr, d.State())
	}

	// Three consecutive clears end it.
	d.Observe(clean(700))
	d.Observe(clean(800))
	tr, ep = d.Observe(clean(900))
	if tr != TransEnd {
		t.Fatalf("third clear transitioned %v, want end", tr)
	}
	if ep.EndNanos != 900 || ep.Truncated {
		t.Fatalf("episode end=%d truncated=%v, want 900/false", ep.EndNanos, ep.Truncated)
	}
	if ep.PeakP99 != 9_000_000 {
		t.Fatalf("peak p99 %d, want 9ms", ep.PeakP99)
	}
	if ep.Ticks != 9 {
		t.Fatalf("episode ticks %d, want 9 (first breach through close)", ep.Ticks)
	}

	// Cooldown swallows breaches for CooldownTicks.
	if tr, _ := d.Observe(breach(1000)); tr != TransNone || d.State() != StateCooldown {
		t.Fatalf("cooldown tick 1: trans %v state %v", tr, d.State())
	}
	if tr, _ := d.Observe(breach(1100)); tr != TransNone || d.State() != StateQuiet {
		t.Fatalf("cooldown tick 2: trans %v state %v, want back to quiet", tr, d.State())
	}

	// And a fresh breach after cooldown re-arms normally.
	d.Observe(breach(1200))
	if tr, ep := d.Observe(breach(1300)); tr != TransStart || ep.StartNanos != 1200 {
		t.Fatalf("post-cooldown re-trigger: trans %v start %d", tr, ep.StartNanos)
	}
}

// A breach that never clears must still close the episode at
// MaxEpisodeTicks — capture cannot stay ramped forever.
func TestDetectorMaxEpisodeTicks(t *testing.T) {
	cfg := testConfig()
	cfg.SuspectTicks = 1
	cfg.MaxEpisodeTicks = 5
	d := NewDetector(cfg)
	if tr, _ := d.Observe(breach(0)); tr != TransStart {
		t.Fatal("SuspectTicks=1 must trigger on the first breach")
	}
	var ended bool
	var ep Episode
	for i := int64(1); i <= 10; i++ {
		tr, e := d.Observe(breach(i * 100))
		if tr == TransEnd {
			ended, ep = true, e
			break
		}
	}
	if !ended {
		t.Fatal("episode never ended under sustained breach")
	}
	if ep.Ticks != 5 || !ep.Truncated {
		t.Fatalf("ticks=%d truncated=%v, want 5/true", ep.Ticks, ep.Truncated)
	}
}

func TestDetectorNoTrafficClears(t *testing.T) {
	cfg := testConfig()
	cfg.SuspectTicks = 1
	cfg.ClearTicks = 2
	d := NewDetector(cfg)
	d.Observe(breach(0))
	// P99 = -1 (idle window) counts as clean: an idle wire has no tail.
	d.Observe(Sample{Nanos: 100, P99: -1})
	if tr, _ := d.Observe(Sample{Nanos: 200, P99: -1}); tr != TransEnd {
		t.Fatalf("idle ticks transitioned %v, want end", tr)
	}
}

func TestDetectorForceEnd(t *testing.T) {
	cfg := testConfig()
	cfg.SuspectTicks = 1
	d := NewDetector(cfg)
	if _, open := d.ForceEnd(50); open {
		t.Fatal("ForceEnd with no episode reported one open")
	}
	d.Observe(breach(100))
	ep, open := d.ForceEnd(250)
	if !open || ep.EndNanos != 250 || !ep.Truncated {
		t.Fatalf("ForceEnd = %+v open=%v, want truncated end at 250", ep, open)
	}
	if d.State() != StateCooldown {
		t.Fatalf("state %v after ForceEnd, want cooldown", d.State())
	}
}

func TestReasonNames(t *testing.T) {
	got := ReasonNames(TriggerP99 | TriggerBurn | TriggerPathHealth)
	want := []string{"p99", "burn", "path-health"}
	if len(got) != len(want) {
		t.Fatalf("ReasonNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReasonNames = %v, want %v (stable order)", got, want)
		}
	}
	if ReasonNames(0) != nil {
		t.Fatal("ReasonNames(0) should be empty")
	}
}

func TestStateStrings(t *testing.T) {
	for s := StateQuiet; s <= StateCooldown; s++ {
		if s.String() == "state(?)" || s.String() == "" {
			t.Errorf("state %d has no name", s)
		}
	}
	if State(99).String() != "state(?)" {
		t.Error("undefined state should render as state(?)")
	}
}

// The always-on cost: one Observe per tick, required allocation-free
// (gated in bench/hotpath_gates.txt).
func BenchmarkDetectorObserve(b *testing.B) {
	d := NewDetector(Config{P99ThresholdNanos: 1_000_000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(Sample{Nanos: int64(i), P99: 200_000})
	}
}
