// Package shutdown is the signal-to-cancellation bridge shared by the
// long-running binaries (mpdp-live, mpdp-gateway): the first SIGINT or
// SIGTERM asks the run to stop and produce its normal exit report — an
// interrupted measurement is still a measurement — and a second signal
// force-quits for when the graceful path itself is wedged.
//
// Beyond the stop channel, callers can register named drain callbacks
// (OnStop) that the first signal runs in registration order — the
// mesh gateway hangs its graceful flow-state handoff here, ahead of the
// teardown steps that depend on it. The Coordinator type carries all the
// state, with the process signal wiring injected, so the double-signal
// path is testable without sending the test runner a SIGINT.
package shutdown

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// namedFunc is one registered drain callback.
type namedFunc struct {
	name string
	fn   func()
}

// Coordinator owns one stop channel plus the ordered drain callbacks.
// The zero value is not usable; NewCoordinator wires the warn writer and
// exit function (tests inject fakes; the package-level default uses
// os.Stderr and os.Exit).
type Coordinator struct {
	mu       sync.Mutex
	stop     chan struct{}
	cbs      []namedFunc
	signaled bool

	warn io.Writer
	exit func(int)
}

// NewCoordinator builds a coordinator with injected side effects. A nil
// warn discards notices; a nil exit panics on the forced-quit path (tests
// that never double-signal can pass nil).
func NewCoordinator(warn io.Writer, exit func(int)) *Coordinator {
	if warn == nil {
		warn = io.Discard
	}
	if exit == nil {
		exit = func(code int) { panic(fmt.Sprintf("shutdown: forced quit (%d) with no exit func", code)) }
	}
	return &Coordinator{stop: make(chan struct{}), warn: warn, exit: exit}
}

// Stop returns the channel closed by the first signal.
func (c *Coordinator) Stop() <-chan struct{} { return c.stop }

// OnStop registers a named drain callback. Callbacks run in registration
// order on the first signal — deterministic, so dependent teardown (drain
// the mesh, then close the metrics listener) can rely on sequence.
// Registering after the first signal runs the callback immediately, in
// the caller's goroutine: the drain phase has already happened, and a
// callback that silently never ran would be worse.
func (c *Coordinator) OnStop(name string, fn func()) {
	c.mu.Lock()
	late := c.signaled
	if !late {
		c.cbs = append(c.cbs, namedFunc{name: name, fn: fn})
	}
	c.mu.Unlock()
	if late {
		fn()
	}
}

// Signal delivers one stop request: the first closes the stop channel and
// runs every registered callback in order; the second warns and calls the
// exit function with status 1. Named s for the notice (pass a signal
// name, or anything descriptive in tests).
func (c *Coordinator) Signal(s string) {
	c.mu.Lock()
	if c.signaled {
		c.mu.Unlock()
		fmt.Fprintln(c.warn, "forced quit") //lint:allow erroreat stderr notice on best effort
		c.exit(1)
		return
	}
	c.signaled = true
	cbs := append([]namedFunc(nil), c.cbs...)
	c.mu.Unlock()
	fmt.Fprintf(c.warn, "\n%s: stopping for exit report (signal again to force quit)\n", s) //lint:allow erroreat stderr notice on best effort
	close(c.stop)
	for _, cb := range cbs {
		fmt.Fprintf(c.warn, "shutdown: %s\n", cb.name) //lint:allow erroreat stderr notice on best effort
		cb.fn()
	}
}

// Requested reports (without blocking) whether a stop has been signalled.
func (c *Coordinator) Requested() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

var (
	once sync.Once
	def  *Coordinator
)

// defaultCoordinator installs the process signal handler once and returns
// the shared coordinator behind Notify/OnStop/Requested.
func defaultCoordinator() *Coordinator {
	once.Do(func() {
		def = NewCoordinator(os.Stderr, os.Exit)
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			for s := range sigs {
				def.Signal(s.String())
			}
		}()
	})
	return def
}

// Notify returns a channel that is closed on the first SIGINT/SIGTERM.
// Callers select on it (or poll with a non-blocking receive) at natural
// batch boundaries and then run their usual end-of-run reporting. A second
// signal exits the process immediately with status 1.
//
// The channel is shared process-wide: every caller sees the same
// cancellation, and installing the handler is idempotent.
func Notify() <-chan struct{} {
	return defaultCoordinator().Stop()
}

// OnStop registers a named drain callback on the process-wide
// coordinator (installing the signal handler if needed). Callbacks run in
// registration order when the first SIGINT/SIGTERM arrives.
func OnStop(name string, fn func()) {
	defaultCoordinator().OnStop(name, fn)
}

// Requested reports (without blocking) whether a stop has been signalled.
// Returns false when Notify has never been called.
func Requested() bool {
	if def == nil {
		return false
	}
	return def.Requested()
}
