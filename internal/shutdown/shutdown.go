// Package shutdown is the signal-to-cancellation bridge shared by the
// long-running binaries (mpdp-live, mpdp-gateway): the first SIGINT or
// SIGTERM asks the run to stop and produce its normal exit report — an
// interrupted measurement is still a measurement — and a second signal
// force-quits for when the graceful path itself is wedged.
package shutdown

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

var (
	once sync.Once
	stop chan struct{}
)

// Notify returns a channel that is closed on the first SIGINT/SIGTERM.
// Callers select on it (or poll with a non-blocking receive) at natural
// batch boundaries and then run their usual end-of-run reporting. A second
// signal exits the process immediately with status 1.
//
// The channel is shared process-wide: every caller sees the same
// cancellation, and installing the handler is idempotent.
func Notify() <-chan struct{} {
	once.Do(func() {
		stop = make(chan struct{})
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sigs
			fmt.Fprintf(os.Stderr, "\n%s: stopping for exit report (signal again to force quit)\n", s) //lint:allow erroreat stderr notice on best effort
			close(stop)
			<-sigs
			fmt.Fprintln(os.Stderr, "forced quit") //lint:allow erroreat stderr notice on best effort
			os.Exit(1)
		}()
	})
	return stop
}

// Requested reports (without blocking) whether a stop has been signalled.
// Returns false when Notify has never been called.
func Requested() bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
