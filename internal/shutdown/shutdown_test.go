package shutdown

import (
	"bytes"
	"strings"
	"testing"
)

func TestCoordinatorRunsCallbacksInOrder(t *testing.T) {
	var warn bytes.Buffer
	c := NewCoordinator(&warn, nil)
	var order []string
	c.OnStop("drain-mesh", func() { order = append(order, "drain-mesh") })
	c.OnStop("close-metrics", func() { order = append(order, "close-metrics") })
	c.OnStop("flush-report", func() { order = append(order, "flush-report") })
	if c.Requested() {
		t.Fatal("requested before any signal")
	}
	c.Signal("SIGINT")
	if !c.Requested() {
		t.Fatal("not requested after the first signal")
	}
	select {
	case <-c.Stop():
	default:
		t.Fatal("stop channel not closed")
	}
	want := []string{"drain-mesh", "close-metrics", "flush-report"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("callback order %v, want registration order %v", order, want)
		}
	}
	for _, name := range want {
		if !strings.Contains(warn.String(), "shutdown: "+name) {
			t.Fatalf("warn output %q does not announce %q", warn.String(), name)
		}
	}
}

func TestCoordinatorDoubleSignalForceQuits(t *testing.T) {
	var warn bytes.Buffer
	exitCode := -1
	c := NewCoordinator(&warn, func(code int) { exitCode = code })
	var drains int
	c.OnStop("drain", func() { drains++ })
	c.Signal("SIGINT")
	if exitCode != -1 {
		t.Fatalf("first signal exited with %d", exitCode)
	}
	c.Signal("SIGINT")
	if exitCode != 1 {
		t.Fatalf("second signal exited with %d, want immediate exit 1", exitCode)
	}
	if drains != 1 {
		t.Fatalf("drain callback ran %d times, want once", drains)
	}
	if !strings.Contains(warn.String(), "forced quit") {
		t.Fatalf("warn output %q does not announce the forced quit", warn.String())
	}
}

func TestCoordinatorLateRegistrationRunsImmediately(t *testing.T) {
	c := NewCoordinator(nil, nil)
	c.Signal("test-stop")
	ran := false
	c.OnStop("late", func() { ran = true })
	if !ran {
		t.Fatal("callback registered after the stop never ran")
	}
}

func TestRequestedWithoutNotify(t *testing.T) {
	// The package-level default must stay inert until someone calls
	// Notify/OnStop; Requested on a fresh process reports false. (def may
	// already be installed by another test in this package — only assert
	// the nil-safe path when it is genuinely untouched.)
	if def == nil && Requested() {
		t.Fatal("Requested true before Notify")
	}
}
