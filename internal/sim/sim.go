// Package sim implements the discrete-event simulation kernel underneath the
// MPDP virtual data plane.
//
// All of MPDP runs in virtual time: a simulated nanosecond clock advanced
// only by the event loop. This substitutes for the paper's wall-clock
// DPDK/Click testbed (see DESIGN.md §2) and makes every experiment
// deterministic and bit-reproducible for a given seed.
//
// The kernel is intentionally minimal: a monotonic clock, a binary-heap
// event queue with stable FIFO ordering for simultaneous events, and
// cancellable event handles. Everything else (queues, cores, NICs) is built
// on top in the vnet package.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration spans between two virtual-time points, in nanoseconds.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Time with an adaptive unit, for logs and tables.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Event is a scheduled callback. The zero value is invalid; events are
// created by Simulator.Schedule and friends.
type Event struct {
	at        Time
	seq       uint64 // tiebreaker: FIFO among simultaneous events
	fn        func()
	index     int // position in the heap, -1 when not queued
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel is O(1); the slot is dropped
// lazily when it reaches the top of the heap.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil // release closure for GC
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Time returns the virtual time at which the event fires (or would have).
func (e *Event) Time() Time { return e.at }

// Simulator owns the virtual clock and the pending-event heap.
// The zero value is a simulator at time 0 with no events, ready to use.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  uint64
}

// New returns a simulator at virtual time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.events) }

// Fired returns the total number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Schedule queues fn to run after delay. A negative delay panics: the
// simulator's clock is monotonic and the past cannot be rewritten.
func (s *Simulator) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %d", delay))
	}
	t := s.now + delay
	if t < s.now { // int64 overflow: clamp to the end of virtual time
		t = math.MaxInt64
	}
	return s.At(t, fn)
}

// At queues fn to run at absolute virtual time t (>= Now).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	s.events.push(e)
	return e
}

// Step fires the single earliest event. It returns false when no runnable
// event remains. The dispatch loop itself is allocation-free; scheduling
// (At) owns the per-event allocation.
//
//mpdp:hotpath bench=BenchmarkSimStep
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := s.events.pop()
		if e.cancelled {
			continue
		}
		s.now = e.at
		fn := e.fn
		e.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// Run drains the event queue completely, advancing virtual time as it goes.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil fires events up to and including time t, then sets the clock to
// t even if the queue drained earlier. Events scheduled after t stay queued.
func (s *Simulator) RunUntil(t Time) {
	for {
		e := s.peekRunnable()
		if e == nil || e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the clock by d, firing all events in the window.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now + d) }

// peekRunnable discards cancelled events at the top of the heap and returns
// the next live one, or nil.
func (s *Simulator) peekRunnable() *Event {
	for len(s.events) > 0 {
		e := s.events[0]
		if !e.cancelled {
			return e
		}
		s.events.pop()
	}
	return nil
}

// eventHeap is a binary min-heap ordered by (time, seq). A hand-rolled heap
// (rather than container/heap) avoids interface boxing on the hottest path
// of the simulator.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	e.index = len(*h) - 1
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old)
	top := old[0]
	old[0], old[n-1] = old[n-1], old[0]
	old[0].index = 0
	old[n-1] = nil
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
