package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("final clock = %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	s := New()
	var last Time = -1
	for i := 0; i < 100; i++ {
		d := Duration(i * 7 % 50)
		s.Schedule(d, func() {
			if s.Now() < last {
				t.Fatalf("clock went backwards: %v < %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestAtBeforeNowPanics(t *testing.T) {
	s := New()
	s.Schedule(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(10, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	s := New()
	e := s.Schedule(10, func() {})
	e.Cancel()
	e.Cancel() // must not panic
	var nilEv *Event
	nilEv.Cancel() // nil-safe
	s.Run()
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var fired []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = s.Schedule(Duration(i+1), func() { fired = append(fired, i) })
	}
	evs[2].Cancel()
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(10, func() {
		times = append(times, s.Now())
		s.Schedule(5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested scheduling produced %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i*10), func() { count++ })
	}
	s.RunUntil(50)
	if count != 5 {
		t.Fatalf("RunUntil(50) fired %d events, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("remaining events lost: fired %d total", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("idle RunUntil left clock at %v", s.Now())
	}
}

func TestRunUntilInclusive(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(100, func() { fired = true })
	s.RunUntil(100)
	if !fired {
		t.Fatal("event exactly at boundary did not fire")
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.Schedule(100, func() {})
	s.Run()
	s.RunFor(50)
	if s.Now() != 150 {
		t.Fatalf("RunFor: clock = %v, want 150", s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	e := s.Schedule(1, func() {})
	e.Cancel()
	if s.Step() {
		t.Fatal("Step with only cancelled events returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(Duration(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestPending(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending() after Run = %d", s.Pending())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Seconds conversion wrong")
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Fatal("Micros conversion wrong")
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []Time
	tk := NewTicker(s, 10, func(now Time) { ticks = append(ticks, now) })
	s.RunUntil(35)
	tk.Stop()
	s.RunUntil(100)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks %v, want 3", len(ticks), ticks)
	}
	for i, tm := range ticks {
		if want := Time(10 * (i + 1)); tm != want {
			t.Fatalf("tick %d at %v, want %v", i, tm, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(s, 5, func(Time) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	NewTicker(New(), 0, func(Time) {})
}

// Property: any batch of scheduled delays fires in non-decreasing time order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delays {
			s.Schedule(Duration(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: heap never loses events — fired count equals scheduled count.
func TestQuickNoEventLoss(t *testing.T) {
	f := func(delays []uint8) bool {
		s := New()
		count := 0
		for _, d := range delays {
			s.Schedule(Duration(d), func() { count++ })
		}
		s.Run()
		return count == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(Duration(i%1000), func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkHeap10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 10000; j++ {
			s.Schedule(Duration(j*7919%10000), func() {})
		}
		s.Run()
	}
}

// BenchmarkSimStep measures the dispatch loop alone: every event is
// scheduled before the timer starts, so the //mpdp:hotpath alloc gate
// covers Step and not At's per-event allocation.
func BenchmarkSimStep(b *testing.B) {
	s := New()
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < b.N; i++ {
		s.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if fired != b.N {
		b.Fatalf("fired %d of %d events", fired, b.N)
	}
}
