package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the building block for poll-mode loops and periodic telemetry.
type Ticker struct {
	sim    *Simulator
	period Duration
	fn     func(now Time)
	ev     *Event
	stop   bool
}

// NewTicker starts a ticker on s firing every period, first at now+period.
// It panics if period <= 0.
func NewTicker(s *Simulator, period Duration, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn(t.sim.Now())
		if !t.stop {
			t.arm()
		}
	})
}

// Stop halts the ticker; subsequent ticks are cancelled.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
