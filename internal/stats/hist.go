// Package stats provides the measurement machinery of MPDP: an HDR-style
// log-bucketed latency histogram with exact count/sum/min/max, a streaming
// P² quantile estimator for per-path telemetry, Welford summaries, and
// windowed time series for timeline experiments.
//
// All values are int64 (virtual-time nanoseconds in practice, but the
// package is unit-agnostic).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram bucket layout: values below 64 get exact unit buckets; above,
// each power-of-two range is split into 64 geometric sub-buckets, bounding
// relative quantile error by 2^-6 ≈ 1.6%. This mirrors HdrHistogram's
// design while staying dependency-free.
const (
	histMantissaBits = 6
	histLinearLimit  = 1 << histMantissaBits // 64
	histSubBuckets   = 1 << histMantissaBits
	histNumBuckets   = histLinearLimit + (63-histMantissaBits)*histSubBuckets + histSubBuckets
)

// Hist is a fixed-memory latency histogram. The zero value is ready to use.
type Hist struct {
	counts [histNumBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: math.MaxInt64} }

func bucketOf(v int64) int {
	if v < histLinearLimit {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histMantissaBits
	shift := exp - histMantissaBits
	mantissa := int(v>>uint(shift)) & (histSubBuckets - 1)
	return histLinearLimit + (exp-histMantissaBits)*histSubBuckets + mantissa
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < histLinearLimit {
		return int64(i)
	}
	i -= histLinearLimit
	exp := i/histSubBuckets + histMantissaBits
	off := int64(i % histSubBuckets)
	return (int64(1) << uint(exp)) + off<<uint(exp-histMantissaBits)
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i < histLinearLimit {
		return int64(i)
	}
	next := bucketLowerSafe(i + 1)
	return next - 1
}

func bucketLowerSafe(i int) int64 {
	if i >= histNumBuckets {
		return math.MaxInt64
	}
	return bucketLower(i)
}

// Record adds one observation. Negative values are clamped to zero (they can
// only arise from misuse; clamping keeps the histogram total consistent).
func (h *Hist) Record(v int64) {
	if h.count == 0 && h.min == 0 {
		// Zero-value initialization path.
		h.min = math.MaxInt64
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the exact sum of observations.
func (h *Hist) Sum() int64 { return h.sum }

// Mean returns the exact mean, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the exact minimum, or 0 when empty.
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum, or 0 when empty.
func (h *Hist) Max() int64 { return h.max }

// Percentile returns the value at quantile q in [0,1], with ≤1.6% relative
// error above 64 and exact below. Empty histograms return 0.
func (h *Hist) Percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based), ceil(q*count).
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			// Midpoint of the bucket, clamped to observed extremes so
			// p0/p100 remain exact.
			mid := (bucketLower(i) + bucketUpper(i)) / 2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Merge adds all of o's observations into h.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Hist) Reset() {
	*h = Hist{min: math.MaxInt64}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value int64   // latency value (bucket upper bound)
	Frac  float64 // cumulative fraction <= Value
}

// CDF returns the empirical CDF as a compact list of non-empty buckets.
func (h *Hist) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Value: bucketUpper(i), Frac: float64(cum) / float64(h.count)})
	}
	return out
}

// Summary bundles the headline percentiles for table output.
type Summary struct {
	Count              uint64
	Mean               float64
	Min, P50, P90, P95 int64
	P99, P999, Max     int64
}

// Summarize extracts the standard tail-latency summary.
func (h *Hist) Summarize() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Percentile(0.50),
		P90:   h.Percentile(0.90),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p90=%d p99=%d p99.9=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// Quantiles computes exact quantiles of a small sample in one pass (sorting
// a copy); used by tests to validate the histogram and by small-N summaries.
func Quantiles(sample []int64, qs ...float64) []int64 {
	if len(sample) == 0 {
		out := make([]int64, len(qs))
		return out
	}
	s := make([]int64, len(sample))
	copy(s, sample)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(math.Ceil(q*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = s[idx]
	}
	return out
}
