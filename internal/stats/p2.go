package stats

// P2 is the Jain & Chlamtac P² streaming quantile estimator: five markers
// maintained with parabolic interpolation, O(1) memory and O(1) update.
//
// MPDP's path telemetry uses one P2 per path to track the p99 of recent
// service latency; the full histogram would be too heavy to keep per path
// per window, and the scheduler only needs a smoothed tail signal.
type P2 struct {
	q       float64    // target quantile
	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	desired [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments
	initBuf [5]float64 // first five observations
}

// NewP2 returns an estimator for quantile q in (0,1).
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic("stats: NewP2 quantile must be in (0,1)")
	}
	p := &P2{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.desired = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add feeds one observation.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		p.initBuf[p.n] = x
		p.n++
		if p.n == 5 {
			// Sort the first five to initialize markers.
			b := p.initBuf
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && b[j-1] > b[j]; j-- {
					b[j-1], b[j] = b[j], b[j-1]
				}
			}
			p.heights = b
		}
		return
	}

	// Find cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.incr[i]
	}
	p.n++

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			var sign float64 = 1
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + d
	num2 := p.pos[i+1] - p.pos[i] - d
	den1 := p.pos[i+1] - p.pos[i]
	den2 := p.pos[i] - p.pos[i-1]
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		(num1*(p.heights[i+1]-p.heights[i])/den1+num2*(p.heights[i]-p.heights[i-1])/den2)
}

func (p *P2) linear(i int, d float64) float64 {
	di := int(d)
	return p.heights[i] + d*(p.heights[i+di]-p.heights[i])/(p.pos[i+di]-p.pos[i])
}

// Value returns the current quantile estimate. Before five observations it
// returns the best available order statistic of what has been seen.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		b := make([]float64, p.n)
		copy(b, p.initBuf[:p.n])
		for i := 1; i < len(b); i++ {
			for j := i; j > 0 && b[j-1] > b[j]; j-- {
				b[j-1], b[j] = b[j], b[j-1]
			}
		}
		idx := int(p.q * float64(p.n))
		if idx >= p.n {
			idx = p.n - 1
		}
		return b[idx]
	}
	return p.heights[2]
}

// Count returns the number of observations fed so far.
func (p *P2) Count() int { return p.n }

// Reset clears the estimator, keeping its target quantile.
func (p *P2) Reset() {
	q := p.q
	*p = *NewP2(q)
}

// RollingP2 is a windowed quantile estimate built from two P² estimators
// rotated externally (e.g. by a simulation ticker): the *previous* window's
// converged estimate is served while the current window accumulates, so the
// signal both adapts (old stragglers age out after two windows) and stays
// stable (a half-filled window never jitters the reading).
//
// Without rotation a cumulative P² never forgets: one bad interference
// episode would stigmatize a path for the rest of the run.
type RollingP2 struct {
	q       float64
	cur     *P2
	prevVal float64
	prevSet bool
}

// NewRollingP2 returns a rolling estimator for quantile q in (0,1).
func NewRollingP2(q float64) *RollingP2 {
	return &RollingP2{q: q, cur: NewP2(q)}
}

// Add feeds one observation into the current window.
func (r *RollingP2) Add(x float64) { r.cur.Add(x) }

// Rotate closes the current window: its estimate becomes the served value
// and a fresh window begins. Windows with fewer than 5 observations are
// discarded (their order statistics are too noisy to serve).
func (r *RollingP2) Rotate() {
	if r.cur.Count() >= 5 {
		r.prevVal = r.cur.Value()
		r.prevSet = true
	}
	r.cur.Reset()
}

// Value returns the last completed window's estimate; before the first
// rotation it falls back to the live current-window estimate.
func (r *RollingP2) Value() float64 {
	if r.prevSet {
		return r.prevVal
	}
	return r.cur.Value()
}

// EWMA is an exponentially weighted moving average with configurable alpha;
// the other half of per-path telemetry (tracks the central tendency, where
// P2 tracks the tail).
type EWMA struct {
	alpha float64
	value float64
	set   bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0,1]; larger alpha
// reacts faster.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: NewEWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add feeds one observation.
func (e *EWMA) Add(x float64) {
	if !e.set {
		e.value = x
		e.set = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Set reports whether at least one observation has been added.
func (e *EWMA) Set() bool { return e.set }

// Reset clears the average, keeping alpha.
func (e *EWMA) Reset() { e.value, e.set = 0, false }
