package stats

import (
	"math"
	"sort"
	"testing"

	"mpdp/internal/xrand"
)

// TestP2DistributionProperty sweeps the P² estimator across the traffic
// distributions the simulator actually draws from — exponential service
// times, Pareto flow sizes, log-normal jitter — and several seeds, checking
// each estimate against the exact quantile of the same sample. The estimator
// feeds the per-path tail telemetry, so its error bound under heavy tails is
// a correctness property of the scheduler, not a nicety.
func TestP2DistributionProperty(t *testing.T) {
	const n = 40000
	dists := []struct {
		name string
		tol  float64 // relative error budget
		draw func(r *xrand.Rand) float64
	}{
		{"exponential", 0.10, func(r *xrand.Rand) float64 { return r.ExpFloat64(0.01) }},
		{"pareto", 0.15, func(r *xrand.Rand) float64 { return r.Pareto(2.5, 1) }},
		{"lognormal", 0.12, func(r *xrand.Rand) float64 { return r.LogNormal(3, 0.8) }},
	}
	for _, d := range dists {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			for seed := uint64(1); seed <= 3; seed++ {
				p := NewP2(q)
				r := xrand.New(seed * 7919)
				sample := make([]float64, n)
				for i := range sample {
					v := d.draw(r)
					sample[i] = v
					p.Add(v)
				}
				sort.Float64s(sample)
				idx := int(q * n)
				if idx >= n {
					idx = n - 1
				}
				exact := sample[idx]
				got := p.Value()
				if rel := math.Abs(got-exact) / exact; rel > d.tol {
					t.Errorf("%s q=%v seed=%d: P2=%.3f exact=%.3f rel err %.3f > %.2f",
						d.name, q, seed, got, exact, rel, d.tol)
				}
				// The estimate must also be a plausible order statistic: within
				// the sample's range no matter what.
				if got < sample[0] || got > sample[n-1] {
					t.Errorf("%s q=%v seed=%d: P2=%.3f outside sample range [%.3f, %.3f]",
						d.name, q, seed, got, sample[0], sample[n-1])
				}
			}
		}
	}
}

// TestP2SmallNOrderStatistic pins the pre-initialization path (n < 5): the
// estimator must return the exact order statistic of what it has seen, for
// every prefix length and a spread of quantiles.
func TestP2SmallNOrderStatistic(t *testing.T) {
	obs := []float64{42, 7, 99, 13}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		p := NewP2(q)
		for i, x := range obs {
			p.Add(x)
			n := i + 1
			sorted := append([]float64(nil), obs[:n]...)
			sort.Float64s(sorted)
			idx := int(q * float64(n))
			if idx >= n {
				idx = n - 1
			}
			if got := p.Value(); got != sorted[idx] {
				t.Fatalf("q=%v after %d obs: Value=%v, want order statistic %v", q, n, got, sorted[idx])
			}
		}
	}
}

// TestP2AllEqual feeds a constant stream: every marker collapses onto the
// same height and the estimate must be exactly that constant, with no
// interpolation drift.
func TestP2AllEqual(t *testing.T) {
	for _, q := range []float64{0.5, 0.99} {
		p := NewP2(q)
		for i := 0; i < 1000; i++ {
			p.Add(250)
		}
		if got := p.Value(); got != 250 {
			t.Fatalf("q=%v: constant stream estimated as %v", q, got)
		}
	}
}

// TestP2ShiftedStream checks the estimator tracks a regime change: after a
// step in the distribution, the estimate must move toward the new quantile
// (P² is cumulative, so it lags — but it must at least leave the old level).
func TestP2ShiftedStream(t *testing.T) {
	p := NewP2(0.9)
	r := xrand.New(5)
	for i := 0; i < 5000; i++ {
		p.Add(100 + r.Float64())
	}
	before := p.Value()
	for i := 0; i < 50000; i++ {
		p.Add(1000 + r.Float64())
	}
	after := p.Value()
	if after < 5*before {
		t.Fatalf("p90 stuck at %.1f after a 10x regime shift (was %.1f)", after, before)
	}
}
