package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mpdp/internal/xrand"
)

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Percentile(0.99) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestHistZeroValueUsable(t *testing.T) {
	var h Hist
	h.Record(5)
	h.Record(10)
	if h.Min() != 5 || h.Max() != 10 || h.Count() != 2 {
		t.Fatalf("zero-value hist: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistExactSmallValues(t *testing.T) {
	h := NewHist()
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Count() != 64 || h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("small-value bookkeeping: %+v", h.Summarize())
	}
	// Median of 0..63 at rank 32 -> value 31.
	if p := h.Percentile(0.5); p != 31 {
		t.Fatalf("p50 = %d, want 31", p)
	}
}

func TestHistPercentileAccuracy(t *testing.T) {
	h := NewHist()
	r := xrand.New(1)
	sample := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := int64(r.ExpFloat64(1.0/50000) + 1)
		h.Record(v)
		sample = append(sample, v)
	}
	exact := Quantiles(sample, 0.5, 0.9, 0.99, 0.999)
	got := []int64{h.Percentile(0.5), h.Percentile(0.9), h.Percentile(0.99), h.Percentile(0.999)}
	for i := range exact {
		rel := math.Abs(float64(got[i]-exact[i])) / float64(exact[i])
		if rel > 0.02 {
			t.Errorf("quantile %d: hist=%d exact=%d rel err %.3f", i, got[i], exact[i], rel)
		}
	}
}

func TestHistMeanExact(t *testing.T) {
	h := NewHist()
	var sum int64
	for i := int64(1); i <= 1000; i++ {
		v := i * 1000
		h.Record(v)
		sum += v
	}
	if got, want := h.Mean(), float64(sum)/1000; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist()
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative clamp: %+v", h.Summarize())
	}
}

func TestHistLargeValues(t *testing.T) {
	h := NewHist()
	large := int64(1) << 55
	h.Record(large)
	p := h.Percentile(1)
	rel := math.Abs(float64(p-large)) / float64(large)
	if rel > 0.02 {
		t.Fatalf("large value percentile %d vs %d (rel %.3f)", p, large, rel)
	}
}

func TestHistPercentileBoundsClamp(t *testing.T) {
	h := NewHist()
	h.Record(100)
	if h.Percentile(-1) != 100 || h.Percentile(2) != 100 {
		t.Fatal("out-of-range quantiles not clamped")
	}
	// Single value: all quantiles equal it exactly (min/max clamping).
	if h.Percentile(0.5) != 100 {
		t.Fatalf("p50 of single value = %d", h.Percentile(0.5))
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 5000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 5999 {
		t.Fatalf("merged extremes: %d..%d", a.Min(), a.Max())
	}
	// Merge into empty must equal source.
	c := NewHist()
	c.Merge(a)
	if c.Count() != 2000 || c.Min() != 0 || c.Max() != 5999 {
		t.Fatal("merge into empty lost data")
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatalf("min after reset = %d", h.Min())
	}
}

func TestHistCDFMonotone(t *testing.T) {
	h := NewHist()
	r := xrand.New(2)
	for i := 0; i < 10000; i++ {
		h.Record(int64(r.Pareto(1.3, 100)))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value <= cdf[i-1].Value || cdf[i].Frac < cdf[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v %+v", i, cdf[i-1], cdf[i])
		}
	}
	if last := cdf[len(cdf)-1].Frac; math.Abs(last-1) > 1e-12 {
		t.Fatalf("CDF does not end at 1: %v", last)
	}
}

func TestHistSummarizeOrdering(t *testing.T) {
	h := NewHist()
	r := xrand.New(3)
	for i := 0; i < 50000; i++ {
		h.Record(int64(r.LogNormal(10, 1)))
	}
	s := h.Summarize()
	if !(s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("summary not ordered: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	// Every value maps into a bucket whose [lower, upper] contains it.
	values := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 123456, 1 << 30, 1<<62 - 1}
	for _, v := range values {
		b := bucketOf(v)
		lo, hi := bucketLower(b), bucketUpper(b)
		if v < lo || v > hi {
			t.Errorf("value %d in bucket %d bounds [%d,%d]", v, b, lo, hi)
		}
	}
}

func TestQuickBucketContainment(t *testing.T) {
	f := func(v uint64) bool {
		x := int64(v & ((1 << 62) - 1))
		b := bucketOf(x)
		return x >= bucketLower(b) && x <= bucketUpper(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBucketMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketOf(x) <= bucketOf(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesExact(t *testing.T) {
	s := []int64{5, 1, 9, 3, 7}
	qs := Quantiles(s, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 5 || qs[2] != 9 {
		t.Fatalf("Quantiles = %v", qs)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("Quantiles mutated input")
	}
	empty := Quantiles(nil, 0.5)
	if empty[0] != 0 {
		t.Fatal("Quantiles of empty sample")
	}
}

func TestP2AgainstExact(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		p := NewP2(q)
		r := xrand.New(42)
		sample := make([]int64, 0, 50000)
		for i := 0; i < 50000; i++ {
			v := r.ExpFloat64(0.001)
			p.Add(v)
			sample = append(sample, int64(v))
		}
		exact := float64(Quantiles(sample, q)[0])
		got := p.Value()
		rel := math.Abs(got-exact) / exact
		if rel > 0.08 {
			t.Errorf("P2(%v) = %.0f, exact %.0f (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestP2SmallN(t *testing.T) {
	p := NewP2(0.5)
	if p.Value() != 0 {
		t.Fatal("empty P2 value != 0")
	}
	p.Add(10)
	if p.Value() != 10 {
		t.Fatalf("single-sample P2 = %v", p.Value())
	}
	p.Add(20)
	p.Add(30)
	v := p.Value()
	if v < 10 || v > 30 {
		t.Fatalf("3-sample median %v out of range", v)
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d", p.Count())
	}
}

func TestP2Reset(t *testing.T) {
	p := NewP2(0.9)
	for i := 0; i < 100; i++ {
		p.Add(float64(i))
	}
	p.Reset()
	if p.Count() != 0 || p.Value() != 0 {
		t.Fatal("P2 reset incomplete")
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

func TestP2MonotoneShift(t *testing.T) {
	// When the distribution shifts up, the estimate should follow.
	p := NewP2(0.9)
	for i := 0; i < 5000; i++ {
		p.Add(100)
	}
	low := p.Value()
	for i := 0; i < 20000; i++ {
		p.Add(1000)
	}
	if p.Value() <= low {
		t.Fatalf("P2 did not track upward shift: %v -> %v", low, p.Value())
	}
}

func TestEWMABasics(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Set() {
		t.Fatal("fresh EWMA claims to be set")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("after 20: %v, want 15", e.Value())
	}
	e.Reset()
	if e.Set() || e.Value() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.1)
	for i := 0; i < 500; i++ {
		e.Add(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestWelfordMoments(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.Count() != 8 || w.Mean() != 5 {
		t.Fatalf("mean = %v n = %d", w.Mean(), w.Count())
	}
	if math.Abs(w.Variance()-4) > 1e-9 {
		t.Fatalf("variance = %v, want 4", w.Variance())
	}
	if w.Stddev() != 2 || w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("sd=%v min=%v max=%v", w.Stddev(), w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty Welford not zero")
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, all Welford
	r := xrand.New(5)
	for i := 0; i < 1000; i++ {
		x := r.Normal(10, 3)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Fatalf("merge mismatch: mean %v vs %v, var %v vs %v", a.Mean(), all.Mean(), a.Variance(), all.Variance())
	}
	var empty Welford
	empty.Merge(&a)
	if empty.Count() != a.Count() {
		t.Fatal("merge into empty lost data")
	}
}

func TestQuickWelfordMeanInRange(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Constrain to the magnitudes the accumulator is used for
			// (virtual-time nanoseconds); 1e300-scale inputs overflow
			// delta*delta by design.
			x = math.Mod(x, 1e12)
			w.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if w.Count() == 0 {
			return true
		}
		return w.Mean() >= lo-1e-9 && w.Mean() <= hi+1e-9 && w.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSeries(t *testing.T) {
	s := NewWindowSeries(100)
	s.Add(10, 5)
	s.Add(50, 15)
	s.Add(150, 25)
	s.Add(250, 35)
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("got %d bins, want 3", len(pts))
	}
	if pts[0].Start != 0 || pts[1].Start != 100 || pts[2].Start != 200 {
		t.Fatalf("bin starts: %v %v %v", pts[0].Start, pts[1].Start, pts[2].Start)
	}
	if pts[0].Hist.Count() != 2 || pts[1].Hist.Count() != 1 {
		t.Fatal("bin contents wrong")
	}
}

func TestWindowSeriesInvalidWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewWindowSeries(0)
}

func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%100000 + 1000))
	}
}

func BenchmarkHistPercentile(b *testing.B) {
	h := NewHist()
	r := xrand.New(1)
	for i := 0; i < 100000; i++ {
		h.Record(int64(r.ExpFloat64(0.0001)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Percentile(0.99)
	}
}

func BenchmarkP2Add(b *testing.B) {
	p := NewP2(0.99)
	for i := 0; i < b.N; i++ {
		p.Add(float64(i % 10000))
	}
}

func TestRollingP2ServesPreviousWindow(t *testing.T) {
	r := NewRollingP2(0.9)
	for i := 0; i < 1000; i++ {
		r.Add(100)
	}
	r.Rotate()
	// New window full of much larger values: served value is still the
	// previous window's until the next rotation.
	for i := 0; i < 1000; i++ {
		r.Add(10000)
	}
	if v := r.Value(); v > 200 {
		t.Fatalf("rolling value %v leaked the open window", v)
	}
	r.Rotate()
	if v := r.Value(); v < 5000 {
		t.Fatalf("rotation did not adopt the new window: %v", v)
	}
}

func TestRollingP2ForgetsOldEpisode(t *testing.T) {
	// The motivating property: a straggler episode must age out after two
	// rotations instead of stigmatizing the estimate forever (as a
	// cumulative P2 would).
	r := NewRollingP2(0.99)
	for i := 0; i < 500; i++ {
		if i%20 == 10 {
			r.Add(100000) // bad episode
		} else {
			r.Add(1000)
		}
	}
	r.Rotate()
	if r.Value() < 10000 {
		t.Fatalf("episode window should read high, got %v", r.Value())
	}
	for i := 0; i < 500; i++ {
		r.Add(1000) // clean window
	}
	r.Rotate()
	if v := r.Value(); v > 2000 {
		t.Fatalf("old episode did not age out: %v", v)
	}
}

func TestRollingP2DiscardsThinWindows(t *testing.T) {
	r := NewRollingP2(0.5)
	for i := 0; i < 100; i++ {
		r.Add(500)
	}
	r.Rotate()
	r.Add(999999) // 1 sample, then rotate: too thin to serve
	r.Rotate()
	if v := r.Value(); v != 500 {
		t.Fatalf("thin window served: %v", v)
	}
}

func TestRollingP2BeforeFirstRotation(t *testing.T) {
	r := NewRollingP2(0.5)
	if r.Value() != 0 {
		t.Fatal("empty rolling value != 0")
	}
	r.Add(42)
	if r.Value() != 42 {
		t.Fatalf("live fallback = %v", r.Value())
	}
}
