package stats

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance in one numerically stable pass.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the minimum observation (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the maximum observation (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Merge combines another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// WindowSeries bins observations by a fixed time window and keeps a full
// histogram per bin. It powers the adaptivity-timeline experiment (p99 per
// 10 ms window across an interference burst).
type WindowSeries struct {
	window int64
	bins   map[int64]*Hist
}

// NewWindowSeries creates a series with the given window length (>0).
func NewWindowSeries(window int64) *WindowSeries {
	if window <= 0 {
		panic("stats: NewWindowSeries window must be positive")
	}
	return &WindowSeries{window: window, bins: make(map[int64]*Hist)}
}

// Add records value v observed at time t.
func (s *WindowSeries) Add(t, v int64) {
	bin := t / s.window
	h, ok := s.bins[bin]
	if !ok {
		h = NewHist()
		s.bins[bin] = h
	}
	h.Record(v)
}

// WindowPoint is one bin of a WindowSeries.
type WindowPoint struct {
	Start int64 // window start time
	Hist  *Hist
}

// Points returns the non-empty bins in time order.
func (s *WindowSeries) Points() []WindowPoint {
	out := make([]WindowPoint, 0, len(s.bins))
	for bin, h := range s.bins {
		out = append(out, WindowPoint{Start: bin * s.window, Hist: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
