package trace

import (
	"bytes"
	"testing"

	"mpdp/internal/sim"
)

// FuzzReader: arbitrary bytes must never panic the reader; valid traces we
// construct must round-trip.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(0, sampleFrame(1))
	w.Write(1000, sampleFrame(2))
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(Magic[:])
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must satisfy the format invariants.
		var last sim.Time
		for _, r := range recs {
			if len(r.Frame) == 0 || len(r.Frame) > MaxFrameLen {
				t.Fatalf("invalid frame length %d accepted", len(r.Frame))
			}
			if r.Time < last {
				t.Fatal("non-monotonic timestamps accepted")
			}
			last = r.Time
		}
	})
}
