package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mpdp/internal/sim"
)

// pcap interop: export MPDP traces to the classic libpcap file format so
// they open in Wireshark/tcpdump, and import pcap captures as replayable
// MPDP workloads. Only the legacy pcap format (not pcapng) is implemented —
// it is universally readable and trivial to write.

const (
	pcapMagicMicros = 0xa1b2c3d4 // microsecond timestamps
	pcapMagicNanos  = 0xa1b23c4d // nanosecond timestamps
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
)

// ErrBadPcap marks a stream that is not a readable pcap file.
var ErrBadPcap = errors.New("trace: not a pcap file")

// WritePcap converts an MPDP trace stream to a nanosecond-resolution pcap
// file. Returns the number of packets written.
func WritePcap(dst io.Writer, src io.Reader) (int, error) {
	tr, err := NewReader(src)
	if err != nil {
		return 0, err
	}
	// Global header (24 bytes), little endian, nanosecond magic.
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint16(gh[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(gh[6:8], pcapVersionMin)
	// thiszone=0, sigfigs=0.
	binary.LittleEndian.PutUint32(gh[16:20], MaxFrameLen) // snaplen
	binary.LittleEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	if _, err := dst.Write(gh[:]); err != nil {
		return 0, err
	}

	n := 0
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		var ph [16]byte
		sec := uint32(rec.Time / sim.Second)
		nsec := uint32(rec.Time % sim.Second)
		binary.LittleEndian.PutUint32(ph[0:4], sec)
		binary.LittleEndian.PutUint32(ph[4:8], nsec)
		binary.LittleEndian.PutUint32(ph[8:12], uint32(len(rec.Frame)))
		binary.LittleEndian.PutUint32(ph[12:16], uint32(len(rec.Frame)))
		if _, err := dst.Write(ph[:]); err != nil {
			return n, err
		}
		if _, err := dst.Write(rec.Frame); err != nil {
			return n, err
		}
		n++
	}
}

// ReadPcap converts a pcap stream (microsecond or nanosecond, little or
// big endian, Ethernet link type) to an MPDP trace stream. Returns the
// number of packets converted. Timestamps are rebased so the capture's
// first packet lands at virtual time 0.
func ReadPcap(dst io.Writer, src io.Reader) (int, error) {
	var gh [24]byte
	if _, err := io.ReadFull(src, gh[:]); err != nil {
		return 0, ErrBadPcap
	}
	var order binary.ByteOrder = binary.LittleEndian
	magic := binary.LittleEndian.Uint32(gh[0:4])
	nanos := false
	switch magic {
	case pcapMagicMicros:
	case pcapMagicNanos:
		nanos = true
	default:
		// Try big endian.
		magic = binary.BigEndian.Uint32(gh[0:4])
		order = binary.BigEndian
		switch magic {
		case pcapMagicMicros:
		case pcapMagicNanos:
			nanos = true
		default:
			return 0, ErrBadPcap
		}
	}
	if lt := order.Uint32(gh[20:24]); lt != LinkTypeEthernet {
		return 0, fmt.Errorf("trace: unsupported pcap link type %d", lt)
	}

	w, err := NewWriter(dst)
	if err != nil {
		return 0, err
	}
	n := 0
	var base sim.Time = -1
	var last sim.Time
	for {
		var ph [16]byte
		if _, err := io.ReadFull(src, ph[:]); err != nil {
			if err == io.EOF {
				break
			}
			return n, ErrBadPcap
		}
		sec := order.Uint32(ph[0:4])
		sub := order.Uint32(ph[4:8])
		caplen := order.Uint32(ph[8:12])
		if caplen == 0 || caplen > MaxFrameLen {
			return n, fmt.Errorf("trace: pcap record length %d unsupported", caplen)
		}
		frame := make([]byte, caplen)
		if _, err := io.ReadFull(src, frame); err != nil {
			return n, ErrBadPcap
		}
		t := sim.Time(sec) * sim.Second
		if nanos {
			t += sim.Time(sub)
		} else {
			t += sim.Time(sub) * sim.Microsecond
		}
		if base < 0 {
			base = t
		}
		t -= base
		if t < last {
			t = last // clamp rare out-of-order captures to monotonic
		}
		last = t
		if err := w.Write(t, frame); err != nil {
			return n, err
		}
		n++
	}
	return n, w.Flush()
}
