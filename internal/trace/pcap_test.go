package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mpdp/internal/sim"
)

// buildTrace returns a small MPDP trace in memory.
func buildTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write(sim.Time(i)*sim.Microsecond+sim.Time(i%3), sampleFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPcapRoundTrip(t *testing.T) {
	orig := buildTrace(t, 25)

	var pcap bytes.Buffer
	n, err := WritePcap(&pcap, bytes.NewReader(orig))
	if err != nil || n != 25 {
		t.Fatalf("WritePcap: n=%d err=%v", n, err)
	}

	var back bytes.Buffer
	n, err = ReadPcap(&back, bytes.NewReader(pcap.Bytes()))
	if err != nil || n != 25 {
		t.Fatalf("ReadPcap: n=%d err=%v", n, err)
	}

	a, err := ReadAll(bytes.NewReader(orig))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadAll(bytes.NewReader(back.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("record count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time {
			t.Fatalf("record %d time %v vs %v", i, a[i].Time, b[i].Time)
		}
		if !bytes.Equal(a[i].Frame, b[i].Frame) {
			t.Fatalf("record %d frame corrupted", i)
		}
	}
}

func TestPcapHeaderWellFormed(t *testing.T) {
	var pcap bytes.Buffer
	if _, err := WritePcap(&pcap, bytes.NewReader(buildTrace(t, 1))); err != nil {
		t.Fatal(err)
	}
	h := pcap.Bytes()
	if binary.LittleEndian.Uint32(h[0:4]) != pcapMagicNanos {
		t.Fatal("wrong magic")
	}
	if binary.LittleEndian.Uint16(h[4:6]) != 2 || binary.LittleEndian.Uint16(h[6:8]) != 4 {
		t.Fatal("wrong version")
	}
	if binary.LittleEndian.Uint32(h[20:24]) != LinkTypeEthernet {
		t.Fatal("wrong link type")
	}
}

func TestReadPcapMicrosecondBigEndian(t *testing.T) {
	// Hand-build a big-endian microsecond pcap with two frames.
	var buf bytes.Buffer
	var gh [24]byte
	binary.BigEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.BigEndian.PutUint16(gh[4:6], 2)
	binary.BigEndian.PutUint16(gh[6:8], 4)
	binary.BigEndian.PutUint32(gh[16:20], 65535)
	binary.BigEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh[:])
	f := sampleFrame(1)
	for i := 0; i < 2; i++ {
		var ph [16]byte
		binary.BigEndian.PutUint32(ph[0:4], uint32(100+i)) // seconds
		binary.BigEndian.PutUint32(ph[4:8], uint32(500))   // micros
		binary.BigEndian.PutUint32(ph[8:12], uint32(len(f)))
		binary.BigEndian.PutUint32(ph[12:16], uint32(len(f)))
		buf.Write(ph[:])
		buf.Write(f)
	}

	var out bytes.Buffer
	n, err := ReadPcap(&out, bytes.NewReader(buf.Bytes()))
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	recs, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Rebased: first at 0, second at exactly 1 virtual second.
	if recs[0].Time != 0 || recs[1].Time != sim.Second {
		t.Fatalf("rebased times %v %v", recs[0].Time, recs[1].Time)
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(&bytes.Buffer{}, bytes.NewReader([]byte("not a pcap at all....."))); err != ErrBadPcap {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadPcap(&bytes.Buffer{}, bytes.NewReader(nil)); err != ErrBadPcap {
		t.Fatalf("short err = %v", err)
	}
}

func TestReadPcapRejectsNonEthernet(t *testing.T) {
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicMicros)
	binary.LittleEndian.PutUint32(gh[20:24], 101) // LINKTYPE_RAW
	if _, err := ReadPcap(&bytes.Buffer{}, bytes.NewReader(gh[:])); err == nil {
		t.Fatal("non-Ethernet link type accepted")
	}
}

func TestReadPcapClampsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh[:])
	f := sampleFrame(2)
	times := []uint32{100, 50, 200} // middle one out of order
	for _, sec := range times {
		var ph [16]byte
		binary.LittleEndian.PutUint32(ph[0:4], sec)
		binary.LittleEndian.PutUint32(ph[8:12], uint32(len(f)))
		binary.LittleEndian.PutUint32(ph[12:16], uint32(len(f)))
		buf.Write(ph[:])
		buf.Write(f)
	}
	var out bytes.Buffer
	n, err := ReadPcap(&out, bytes.NewReader(buf.Bytes()))
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	recs, _ := ReadAll(bytes.NewReader(out.Bytes()))
	if recs[1].Time != recs[0].Time {
		t.Fatalf("out-of-order record not clamped: %v after %v", recs[1].Time, recs[0].Time)
	}
}
