// Package trace records and replays packet traces in a compact binary
// format, so a workload can be captured once (from any generator or an
// external converter) and replayed bit-identically into the data plane —
// the simulator's equivalent of testing against a pcap.
//
// Format (little endian):
//
//	header:  8-byte magic "MPDPTRC1"
//	record:  uint64 timestamp_ns | uint32 frame_len | frame bytes
//
// Timestamps are virtual-time nanoseconds and must be non-decreasing;
// Writer enforces this so replays never need sorting.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Magic identifies a trace stream.
var Magic = [8]byte{'M', 'P', 'D', 'P', 'T', 'R', 'C', '1'}

// MaxFrameLen bounds a record's frame size (jumbo frame + headroom);
// anything larger marks a corrupt stream.
const MaxFrameLen = 16 * 1024

// Errors returned by the reader/writer.
var (
	ErrBadMagic     = errors.New("trace: bad magic (not an MPDP trace)")
	ErrCorrupt      = errors.New("trace: corrupt record")
	ErrNonMonotonic = errors.New("trace: timestamps must be non-decreasing")
)

// Record is one traced packet.
type Record struct {
	Time  sim.Time
	Frame []byte
}

// Writer streams records to w.
type Writer struct {
	w    *bufio.Writer
	last sim.Time
	n    uint64
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Timestamps must be non-decreasing.
func (tw *Writer) Write(t sim.Time, frame []byte) error {
	if t < tw.last {
		return ErrNonMonotonic
	}
	if len(frame) == 0 || len(frame) > MaxFrameLen {
		return fmt.Errorf("trace: frame length %d out of (0,%d]", len(frame), MaxFrameLen)
	}
	tw.last = t
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(t))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(frame)))
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := tw.w.Write(frame); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams records from r.
type Reader struct {
	r    *bufio.Reader
	last sim.Time
	n    uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadMagic
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at a clean end of stream.
// A frame buffer is allocated per record; the caller owns it.
func (tr *Reader) Next() (Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, ErrCorrupt
	}
	t := sim.Time(binary.LittleEndian.Uint64(hdr[0:8]))
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n == 0 || n > MaxFrameLen {
		return Record{}, ErrCorrupt
	}
	if t < tr.last {
		return Record{}, ErrNonMonotonic
	}
	tr.last = t
	frame := make([]byte, n)
	if _, err := io.ReadFull(tr.r, frame); err != nil {
		return Record{}, ErrCorrupt
	}
	tr.n++
	return Record{Time: t, Frame: frame}, nil
}

// Count returns the number of records read so far.
func (tr *Reader) Count() uint64 { return tr.n }

// ReadAll drains the stream into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Replay schedules every record of the trace onto simulator s, parsing each
// frame and handing the packet to emit at the recorded virtual time.
// Frames that do not parse to an IPv4 five-tuple are counted and skipped.
// It returns (scheduled, skipped).
func Replay(s *sim.Simulator, r io.Reader, emit func(*packet.Packet)) (int, int, error) {
	recs, err := ReadAll(r)
	if err != nil {
		return 0, 0, err
	}
	scheduled, skipped := 0, 0
	for _, rec := range recs {
		key, err := packet.ExtractFlowKey(rec.Frame)
		if err != nil {
			skipped++
			continue
		}
		p := &packet.Packet{Data: rec.Frame, Flow: key, FlowID: key.Hash64()}
		if rec.Time < s.Now() {
			skipped++
			continue
		}
		s.At(rec.Time, func() { emit(p) })
		scheduled++
	}
	return scheduled, skipped, nil
}

// Stats summarizes a trace: packets, bytes, duration, distinct flows, and
// mean rate.
type Stats struct {
	Packets uint64
	Bytes   uint64
	Flows   int
	First   sim.Time
	Last    sim.Time
}

// Duration returns the trace's time span.
func (s Stats) Duration() sim.Duration { return s.Last - s.First }

// MeanPps returns the mean packet rate (packets per virtual second).
func (s Stats) MeanPps() float64 {
	d := s.Duration()
	if d <= 0 {
		return 0
	}
	return float64(s.Packets) / d.Seconds()
}

// Summarize scans a trace stream and computes its Stats.
func Summarize(r io.Reader) (Stats, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	flows := make(map[packet.FlowKey]struct{})
	first := true
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			st.Flows = len(flows)
			return st, nil
		}
		if err != nil {
			return Stats{}, err
		}
		if first {
			st.First = rec.Time
			first = false
		}
		st.Last = rec.Time
		st.Packets++
		st.Bytes += uint64(len(rec.Frame))
		if key, err := packet.ExtractFlowKey(rec.Frame); err == nil {
			flows[key] = struct{}{}
		}
	}
}
