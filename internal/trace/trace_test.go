package trace

import (
	"bytes"

	"testing"
	"testing/quick"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func sampleFrame(i int) []byte {
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, byte(i%200+1)), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: uint16(10000 + i), DstPort: 80, Proto: packet.ProtoUDP,
	}
	return packet.BuildUDP(key, make([]byte, 50+i%100), packet.BuildOpts{})
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 50)
	for i := range frames {
		frames[i] = sampleFrame(i)
		if err := w.Write(sim.Time(i*1000), frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 50 {
		t.Fatalf("writer count %d", w.Count())
	}

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.Time != sim.Time(i*1000) {
			t.Fatalf("record %d time %v", i, rec.Time)
		}
		if !bytes.Equal(rec.Frame, frames[i]) {
			t.Fatalf("record %d frame corrupted", i)
		}
	}
}

func TestWriterRejectsNonMonotonic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(1000, sampleFrame(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(500, sampleFrame(1)); err != ErrNonMonotonic {
		t.Fatalf("err = %v", err)
	}
}

func TestWriterRejectsBadFrames(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(0, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := w.Write(0, make([]byte, MaxFrameLen+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err != ErrBadMagic {
		t.Fatalf("short stream err = %v", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(0, sampleFrame(0))
	w.Flush()
	// Cut the stream mid-frame.
	cut := buf.Bytes()[:buf.Len()-5]
	tr, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReaderDetectsCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(0, sampleFrame(0))
	w.Flush()
	b := buf.Bytes()
	// Corrupt the length field (bytes 8..12 after the 8-byte magic).
	b[8+8] = 0xff
	b[8+9] = 0xff
	b[8+10] = 0xff
	tr, _ := NewReader(bytes.NewReader(b))
	if _, err := tr.Next(); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReplayTiming(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Write(sim.Time(i)*sim.Microsecond, sampleFrame(i))
	}
	w.Flush()

	s := sim.New()
	var times []sim.Time
	scheduled, skipped, err := Replay(s, bytes.NewReader(buf.Bytes()), func(p *packet.Packet) {
		times = append(times, s.Now())
		if p.FlowID == 0 {
			t.Error("replayed packet missing FlowID")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != 10 || skipped != 0 {
		t.Fatalf("scheduled %d skipped %d", scheduled, skipped)
	}
	s.Run()
	for i, tm := range times {
		if tm != sim.Time(i)*sim.Microsecond {
			t.Fatalf("packet %d replayed at %v", i, tm)
		}
	}
}

func TestReplaySkipsNonIP(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	arp := make([]byte, packet.EthHeaderLen+20)
	e := packet.Ethernet{EtherType: packet.EtherTypeARP}
	e.Encode(arp)
	w.Write(0, arp)
	w.Write(1000, sampleFrame(1))
	w.Flush()

	s := sim.New()
	scheduled, skipped, err := Replay(s, bytes.NewReader(buf.Bytes()), func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != 1 || skipped != 1 {
		t.Fatalf("scheduled %d skipped %d", scheduled, skipped)
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	total := 0
	for i := 0; i < 20; i++ {
		f := sampleFrame(i % 5) // 5 distinct flows
		total += len(f)
		w.Write(sim.Time(i)*sim.Millisecond, f)
	}
	w.Flush()
	st, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 20 || st.Bytes != uint64(total) || st.Flows != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.Duration() != 19*sim.Millisecond {
		t.Fatalf("duration %v", st.Duration())
	}
	if st.MeanPps() <= 0 {
		t.Fatal("rate not computed")
	}
}

func TestRecordGeneratorTraffic(t *testing.T) {
	// End to end: record a generator's output, replay it, verify packet
	// count and byte totals survive.
	s := sim.New()
	rng := xrand.New(4)
	tr := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.NewPoisson(rng.Split(), 1000),
		Size:    workload.IMIX{Rng: rng.Split()},
		Flows:   16,
		Rng:     rng.Split(),
	})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	tr.Run(s, func(p *packet.Packet) {
		if err := w.Write(s.Now(), p.Data); err != nil {
			t.Fatal(err)
		}
	}, 100*sim.Microsecond)
	s.Run()
	w.Flush()

	s2 := sim.New()
	var replayed uint64
	scheduled, skipped, err := Replay(s2, bytes.NewReader(buf.Bytes()), func(p *packet.Packet) { replayed++ })
	if err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if skipped != 0 || uint64(scheduled) != w.Count() || replayed != w.Count() {
		t.Fatalf("record/replay mismatch: wrote %d, scheduled %d, replayed %d, skipped %d",
			w.Count(), scheduled, replayed, skipped)
	}
}

// Property: any sequence of valid frames with sorted timestamps round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := xrand.New(seed)
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		var tm sim.Time
		sizes := make([]int, n)
		for i := 0; i < n; i++ {
			tm += sim.Duration(rng.Intn(10000))
			f := sampleFrame(rng.Intn(1000))
			sizes[i] = len(f)
			if err := w.Write(tm, f); err != nil {
				return false
			}
		}
		w.Flush()
		recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(recs) != n {
			return false
		}
		for i, rec := range recs {
			if len(rec.Frame) != sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
