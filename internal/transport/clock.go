package transport

import "time"

// The transport is, by design, the only simulation-scoped package that
// reads the wall clock: real sockets run in real time. Every read funnels
// through this file so the determinism linter sees exactly three deliberate
// exceptions (plus the reorder driver's pump ticker) instead of stray
// time.Now calls scattered through the data path.
//
// The clock is unix-nanosecond valued but monotone-advanced: anchored once
// at package init, then advanced by Go's monotonic clock, so an NTP step
// can never run the reorder simulator backwards.

var clockAnchor = time.Now() //lint:allow determinism single wall-clock anchor for the wire transport

var clockBaseNanos = clockAnchor.UnixNano()

// nowNanos returns monotone unix nanoseconds.
func nowNanos() int64 {
	return clockBaseNanos + time.Since(clockAnchor).Nanoseconds() //lint:allow determinism monotonic advance of the wire clock
}

// deadline converts a timeout into an absolute time for Set{Read,Write}Deadline.
func deadline(d time.Duration) time.Time {
	return time.Now().Add(d) //lint:allow determinism socket deadlines are inherently wall-clock
}
