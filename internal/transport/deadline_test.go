package transport

import (
	"testing"
	"time"

	"mpdp/internal/core"
)

// deadlineTestPaths fabricates n healthy sender paths with the given smoothed
// RTTs (nanoseconds) for scheduler unit tests — no sockets involved.
func deadlineTestPaths(rtts ...int64) []*senderPath {
	paths := make([]*senderPath, len(rtts))
	for i, rtt := range rtts {
		paths[i] = &senderPath{
			id:       uint16(i),
			health:   core.NewHealthTracker(core.HealthConfig{}),
			rttNanos: rtt,
		}
	}
	return paths
}

func deadlineSched(deadlineNanos int64, budget *wireDupBudget) *scheduler {
	return &scheduler{
		name: SchedDeadline, canaryEvery: 16,
		deadlineNanos: deadlineNanos, margin: 3, budget: budget,
	}
}

func TestWireDeadlineSafeStaysSingle(t *testing.T) {
	paths := deadlineTestPaths(100_000, 200_000, 300_000)
	s := deadlineSched(2_000_000, newWireDupBudget(1<<20, 64<<10)) // 2ms » 0.1ms
	for i := 0; i < 20; i++ {
		picks, _ := s.pick(paths, int64(i)*1000, 256)
		if len(picks) != 1 || picks[0] != 0 {
			t.Fatalf("safe pick %v, want single best path 0", picks)
		}
	}
	if s.dstats.Safe != 20 || s.dstats.Duplicated != 0 {
		t.Fatalf("stats %+v", s.dstats)
	}
	if s.budget.spent != 0 {
		t.Fatal("safe picks spent budget")
	}
}

func TestWireDeadlineEscalatesAndBillsBudget(t *testing.T) {
	paths := deadlineTestPaths(500_000, 800_000)
	s := deadlineSched(50_000, newWireDupBudget(1<<20, 64<<10)) // 50µs « 500µs RTT
	picks, _ := s.pick(paths, 0, 256)
	if len(picks) != 2 || picks[0] != 0 || picks[1] != 1 {
		t.Fatalf("at-risk pick %v, want [0 1]", picks)
	}
	if s.dstats.AtRisk != 1 || s.dstats.Duplicated != 1 {
		t.Fatalf("stats %+v", s.dstats)
	}
	if s.budget.spent != 256 {
		t.Fatalf("budget spent %d, want the frame payload 256", s.budget.spent)
	}
}

func TestWireDeadlineDeniesWithoutBudget(t *testing.T) {
	paths := deadlineTestPaths(500_000, 800_000)
	for _, budget := range []*wireDupBudget{nil, newWireDupBudget(0, 0)} {
		s := deadlineSched(50_000, budget)
		picks, _ := s.pick(paths, 0, 256)
		if len(picks) != 1 {
			t.Fatalf("budget-less scheduler duplicated: %v", picks)
		}
		if s.dstats.Denied != 1 {
			t.Fatalf("stats %+v, want 1 denied", s.dstats)
		}
	}
}

func TestWireDeadlineUnsampledPathIsOptimistic(t *testing.T) {
	// No RTT samples yet: estimate 0 means every deadline looks safe, so a
	// cold sender never burns budget before acks teach it anything.
	paths := deadlineTestPaths(0, 0)
	s := deadlineSched(1, newWireDupBudget(1<<20, 64<<10))
	picks, _ := s.pick(paths, 0, 256)
	if len(picks) != 1 {
		t.Fatalf("cold paths escalated: %v", picks)
	}
	if s.dstats.Safe != 1 {
		t.Fatalf("stats %+v", s.dstats)
	}
}

func TestWireDupBudgetRefillAndFloor(t *testing.T) {
	b := newWireDupBudget(1000, 100)
	if !b.trySpend(0, 100) {
		t.Fatal("burst spend denied")
	}
	if b.trySpend(0, 1) {
		t.Fatal("empty bucket granted")
	}
	if !b.trySpend(1_000_000_000, 100) { // one second refills to burst
		t.Fatal("refill failed")
	}
	if b.trySpend(500_000_000, 1) { // time moving backwards mints nothing
		t.Fatal("backwards time minted tokens")
	}
	if b.tokens < 0 {
		t.Fatalf("tokens negative: %v", b.tokens)
	}
	if w := newWireDupBudget(50, 0); w.burst != 1 {
		t.Fatalf("burst floor %v, want 1", w.burst)
	}
}

// TestLoopbackDeadlineCleanWire: on an unimpaired loopback wire RTTs sit far
// under a generous deadline, so the deadline scheduler must behave exactly
// like a single-copy scheduler — full delivery, zero duplicated bytes —
// while still scoring every delivery against the deadline. The deadline is
// explicit and race-detector-proof: under -race, loopback RTTs can blow
// through the 2 ms flag default and real escalations would be correct.
func TestLoopbackDeadlineCleanWire(t *testing.T) {
	rep, err := RunLoopback(LoopbackConfig{
		Paths:                2,
		Scheduler:            SchedDeadline,
		Deadline:             250 * time.Millisecond,
		DupBudgetBytesPerSec: 1 << 20,
		Flows:                4,
		Payload:              128,
		Packets:              3000,
		Health:               wireHealth(),
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if rep.Delivered != rep.Packets {
		t.Fatalf("delivered %d of %d on a clean wire", rep.Delivered, rep.Packets)
	}
	if rep.Sender.DupBytes != 0 {
		t.Fatalf("clean wire spent %d dup bytes under a generous deadline", rep.Sender.DupBytes)
	}
	if got := rep.DeadlineHits + rep.DeadlineMisses; got != rep.Delivered {
		t.Fatalf("deadline scored %d of %d deliveries", got, rep.Delivered)
	}
	if rep.DeadlineMisses != 0 {
		t.Fatalf("%d deadline misses on an unimpaired loopback", rep.DeadlineMisses)
	}
	ds := rep.Sender.Deadline
	if ds == nil {
		t.Fatal("sender stats carry no deadline block under SchedDeadline")
	}
	if ds.Safe+ds.AtRisk != rep.Packets {
		t.Fatalf("scheduler decided %d times for %d packets (%+v)",
			ds.Safe+ds.AtRisk, rep.Packets, ds)
	}
}

// TestLoopbackHedgeBillsDupBytes: the accounting fix — hedged copies must
// show up in SenderStats.DupBytes, one payload per extra frame.
func TestLoopbackHedgeBillsDupBytes(t *testing.T) {
	rep, err := RunLoopback(LoopbackConfig{
		Paths:     2,
		Scheduler: SchedHedge,
		Payload:   128,
		Packets:   2000,
		Health:    wireHealth(),
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	extraFrames := rep.Frames - rep.Packets
	if extraFrames == 0 {
		t.Fatal("hedge sent no extra frames")
	}
	if want := extraFrames * 128; rep.Sender.DupBytes != want {
		t.Fatalf("dup bytes %d, want %d (one 128B payload per extra frame)",
			rep.Sender.DupBytes, want)
	}
}

// TestLoopbackDeadlineUnderDelayFaults: injected delay inflates RTT estimates
// past a tight deadline, so the scheduler must escalate — and stay within its
// byte budget while the dedup layer absorbs the copies.
func TestLoopbackDeadlineUnderDelayFaults(t *testing.T) {
	start := time.Now()
	rep, err := RunLoopback(LoopbackConfig{
		Paths:                2,
		Scheduler:            SchedDeadline,
		Deadline:             500 * time.Microsecond,
		DupBudgetBytesPerSec: 1 << 20,
		DupBudgetBurst:       64 << 10,
		Payload:              256,
		Packets:              4000,
		Health:               wireHealth(),
		Impairer: NewRandomImpairer(ImpairConfig{
			Path: -1, DelayFrac: 0.2, Delay: 2 * time.Millisecond, Seed: 11,
		}),
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	elapsed := time.Since(start)
	ds := rep.Sender.Deadline
	if ds == nil || ds.AtRisk == 0 || ds.Duplicated == 0 {
		t.Fatalf("delay faults never drove escalation: %+v", ds)
	}
	if ds.BudgetSpent != rep.Sender.DupBytes {
		t.Fatalf("budget billed %d but sender duplicated %d bytes",
			ds.BudgetSpent, rep.Sender.DupBytes)
	}
	// Hard budget bound: burst + rate * wall-elapsed (generous wall window).
	allow := float64(64<<10) + float64(1<<20)*elapsed.Seconds()
	if float64(ds.BudgetSpent) > allow {
		t.Fatalf("spent %d bytes past the %f-byte allowance", ds.BudgetSpent, allow)
	}
}
