package transport

// First-copy-wins dedup: hedged duplication sends the same (flow, seq) down
// two paths, and exactly one copy may surface to the application. The
// receiver tracks, per flow, a sliding window of admitted sequence numbers
// — the classic anti-replay bitmap — so the first copy to land claims the
// seq and every later copy is discarded before it reaches the reorder
// stage.
//
// Window sizing: the window must span the largest plausible seq spread
// between the fastest and slowest in-flight copy of one flow — bounded by
// (path latency skew × per-flow packet rate). DefaultDedupWindow (4096
// seqs) covers a 4 ms skew at 1 Mpps on one flow; beyond the window a
// stale copy is treated as a duplicate, which is always safe (the reorder
// stage would refuse to deliver something that old anyway — its flow
// cursor has moved on). See DESIGN.md §9.

// DefaultDedupWindow is the per-flow dedup window in sequence numbers.
// Must be a power of two.
const DefaultDedupWindow = 4096

// dedupWindow is one flow's admitted-seq bitmap covering
// (max-window, max]. Not goroutine-safe; owned by the reorder driver.
type dedupWindow struct {
	started bool
	max     uint64   // highest admitted seq
	bits    []uint64 // ring bitmap, window bits
	window  uint64
}

func newDedupWindow(window uint64) *dedupWindow {
	//lint:allow hotalloc one bitmap per flow at first sight, amortized over the flow's packets
	return &dedupWindow{bits: make([]uint64, window/64), window: window}
}

func (w *dedupWindow) bit(seq uint64) (idx int, mask uint64) {
	b := seq % w.window
	return int(b / 64), 1 << (b % 64)
}

func (w *dedupWindow) set(seq uint64)       { i, m := w.bit(seq); w.bits[i] |= m }
func (w *dedupWindow) clear(seq uint64)     { i, m := w.bit(seq); w.bits[i] &^= m }
func (w *dedupWindow) seen(seq uint64) bool { i, m := w.bit(seq); return w.bits[i]&m != 0 }

// Admit reports whether seq is fresh (first copy) and claims it. Sequences
// at or below max-window are reported as duplicates: too old to verify, and
// too old for the reorder stage to deliver in order anyway.
func (w *dedupWindow) Admit(seq uint64) bool {
	if !w.started {
		w.started = true
		w.max = seq
		w.set(seq)
		return true
	}
	switch {
	case seq > w.max:
		// Window slides forward: positions between the old and new max are
		// unseen; their ring slots must be scrubbed before reuse.
		if seq-w.max >= w.window {
			for i := range w.bits {
				w.bits[i] = 0
			}
		} else {
			for s := w.max + 1; s < seq; s++ {
				w.clear(s)
			}
		}
		w.max = seq
		w.set(seq)
		return true
	case w.max-seq >= w.window:
		return false // behind the window: stale copy
	case w.seen(seq):
		return false
	default:
		w.set(seq)
		return true
	}
}

// dedup is the receiver-wide map of per-flow windows, plus drop accounting.
type dedup struct {
	flows  map[uint64]*dedupWindow
	window uint64

	dupDrops uint64 // copies discarded because their seq was already admitted
}

func newDedup(window uint64) *dedup {
	if window == 0 {
		window = DefaultDedupWindow
	}
	// Round up to a power of two so the ring math stays a mask.
	w := uint64(64)
	for w < window {
		w <<= 1
	}
	return &dedup{flows: make(map[uint64]*dedupWindow), window: w}
}

// Admit claims (flow, seq) for the first copy; duplicates are counted.
//
//mpdp:hotpath bench=BenchmarkDedupAdmit
func (d *dedup) Admit(flow, seq uint64) bool {
	w, ok := d.flows[flow]
	if !ok {
		w = newDedupWindow(d.window)
		d.flows[flow] = w
	}
	if !w.Admit(seq) {
		d.dupDrops++
		return false
	}
	return true
}
