package transport

import "testing"

func TestDedupFirstCopyWins(t *testing.T) {
	d := newDedup(256)
	if !d.Admit(1, 0) {
		t.Fatal("first copy of seq 0 refused")
	}
	if d.Admit(1, 0) {
		t.Fatal("second copy of seq 0 admitted")
	}
	if d.dupDrops != 1 {
		t.Fatalf("dupDrops = %d, want 1", d.dupDrops)
	}
	// Independent flows do not interfere.
	if !d.Admit(2, 0) {
		t.Fatal("flow 2 seq 0 refused after flow 1 claimed its own seq 0")
	}
}

func TestDedupOutOfOrderWithinWindow(t *testing.T) {
	d := newDedup(256)
	for _, seq := range []uint64{5, 3, 9, 4, 0} {
		if !d.Admit(7, seq) {
			t.Fatalf("fresh seq %d refused", seq)
		}
	}
	for _, seq := range []uint64{5, 3, 9, 4, 0} {
		if d.Admit(7, seq) {
			t.Fatalf("duplicate seq %d admitted", seq)
		}
	}
	if !d.Admit(7, 6) {
		t.Fatal("unseen seq 6 refused")
	}
}

func TestDedupWindowSlide(t *testing.T) {
	d := newDedup(64)
	if !d.Admit(1, 0) {
		t.Fatal("seq 0 refused")
	}
	// Jump far ahead: window slides, old positions scrubbed.
	if !d.Admit(1, 1000) {
		t.Fatal("seq 1000 refused")
	}
	// A copy behind the window is a duplicate by policy (too old to verify).
	if d.Admit(1, 0) {
		t.Fatal("stale seq 0 admitted after window slid past it")
	}
	// In-window predecessors of the new max are fresh: ring slots were
	// scrubbed when the window slid.
	for seq := uint64(990); seq < 1000; seq++ {
		if !d.Admit(1, seq) {
			t.Fatalf("in-window seq %d refused after slide", seq)
		}
	}
	// And they dedup properly afterwards.
	if d.Admit(1, 995) {
		t.Fatal("duplicate seq 995 admitted")
	}
}

func TestDedupModerateSlideScrubs(t *testing.T) {
	d := newDedup(64)
	for seq := uint64(0); seq < 60; seq++ {
		if !d.Admit(1, seq) {
			t.Fatalf("seq %d refused", seq)
		}
	}
	// Slide by less than the window: 60..99 reuse ring slots of 0..39.
	if !d.Admit(1, 99) {
		t.Fatal("seq 99 refused")
	}
	for seq := uint64(60); seq < 99; seq++ {
		if !d.Admit(1, seq) {
			t.Fatalf("seq %d refused: stale bit not scrubbed on slide", seq)
		}
	}
}

func TestVerifierCatchesDuplicateAndDisorder(t *testing.T) {
	v := NewVerifier()
	for seq := uint64(0); seq < 4; seq++ {
		v.NoteSent(1, seq)
	}
	v.NoteDelivered(1, 0)
	v.NoteDelivered(1, 1)
	v.NoteDelivered(1, 1) // duplicate
	v.NoteDelivered(1, 3)
	v.NoteDelivered(1, 2) // out of order
	v.NoteDelivered(1, 9) // never sent
	if err := v.Finish(); err == nil {
		t.Fatal("Finish accepted duplicate + disorder + invention")
	}
	// The three injected faults, plus the two aggregate checks they trip at
	// Finish (over-delivery total, per-flow delivered-beyond-sent).
	_, n := v.Violations()
	if n != 5 {
		t.Fatalf("violations = %d, want 5", n)
	}
}

func TestVerifierCleanRunPasses(t *testing.T) {
	v := NewVerifier()
	for flow := uint64(1); flow <= 3; flow++ {
		for seq := uint64(0); seq < 100; seq++ {
			v.NoteSent(flow, seq)
		}
	}
	// Losses are legal: deliver a subset, in order.
	for flow := uint64(1); flow <= 3; flow++ {
		for seq := uint64(0); seq < 100; seq += 2 {
			v.NoteDelivered(flow, seq)
		}
	}
	if err := v.Finish(); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
	sent, delivered := v.Counts()
	if sent != 300 || delivered != 150 {
		t.Fatalf("counts = %d/%d, want 300/150", sent, delivered)
	}
}

// BenchmarkDedupAdmit drives one flow with strictly increasing sequence
// numbers: the steady-state slide of an established window, which must not
// allocate (the per-flow bitmap is paid once at flow birth).
func BenchmarkDedupAdmit(b *testing.B) {
	d := newDedup(0)
	d.Admit(7, 0) // flow birth: window bitmap allocates here
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Admit(7, uint64(i)+1)
	}
}
