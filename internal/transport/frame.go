// Package transport is the on-the-wire multipath data plane: real UDP
// datagrams carrying MPDP1 frames across N concurrent socket pairs, with
// sender-side path scheduling (round-robin, least-inflight, hedged
// duplication), per-path loss detection from gap/ack tracking feeding the
// core path-health state machine, first-copy-wins dedup, and in-order
// delivery through the core reorder buffer.
//
// Where internal/sim mitigates tail latency in virtual time and
// internal/live in one process's wall clock, this package puts MPDP frames
// on actual sockets: the scheduling policies, health machine, and reorder
// semantics are the ones internal/core defines, re-driven by signals a real
// network provides (acks, gaps, write errors) instead of simulator events.
//
// Wire format (MPDP1, little endian, fixed 44-byte header — varint-free so
// the encode hot path is a handful of stores and decoding never reads past
// a validated length):
//
//	offset size field
//	0      4    magic "MPDP"
//	4      1    version (0x01; magic+version spell the MPDP1 format name)
//	5      1    flags (dup/ack/probe/echo)
//	6      2    path ID
//	8      8    flow ID
//	16     8    global seq   (per-flow ingress sequence; reorder key)
//	24     8    path seq     (per-path monotone counter; gap-detection key)
//	32     8    send timestamp (sender's unix nanoseconds)
//	40     4    payload length
//	44     …    payload
//
// Ack frames (FlagAck) reuse the header as the ack body and carry no
// payload: path seq holds the highest path seq seen on the acked path,
// global seq the cumulative count of data frames received on it, and the
// timestamp echoes the newest data frame's send time (an RTT probe).
//
// The codec mirrors internal/obs's MPDPOBS1 discipline: a fuzzed decoder
// that never panics and never aliases out of bounds, strict validation
// (magic, version, flags, length consistency) so corruption is detected
// rather than misparsed, and golden frames under testdata/ pinning the
// byte layout forever.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame flag bits.
const (
	// FlagDup marks a hedged duplicate copy; the receiver's dedup window
	// keeps whichever copy of (flow, seq) lands first.
	FlagDup uint8 = 1 << 0
	// FlagAck marks an acknowledgement frame (header-only).
	FlagAck uint8 = 1 << 1
	// FlagProbe marks a canary sent down a probing path.
	FlagProbe uint8 = 1 << 2
	// FlagEcho marks a data frame reflected by an echo gateway; its send
	// timestamp is the original sender's, so arrival time minus timestamp
	// is a full wire round trip.
	FlagEcho uint8 = 1 << 3

	flagsKnown = FlagDup | FlagAck | FlagProbe | FlagEcho
)

// Version is the MPDP1 wire version byte.
const Version = 1

// HeaderLen is the fixed encoded header size.
const HeaderLen = 44

// MaxPayload bounds a frame's payload so every frame fits comfortably in
// one UDP datagram (loopback and jumbo-capable fabrics included) and a
// hostile length field cannot ask for gigabytes.
const MaxPayload = 16 << 10

// Magic identifies an MPDP1 frame (together with the version byte).
var Magic = [4]byte{'M', 'P', 'D', 'P'}

// Codec errors.
var (
	ErrBadMagic   = errors.New("transport: bad magic (not an MPDP1 frame)")
	ErrBadVersion = errors.New("transport: unsupported MPDP1 version")
	ErrCorrupt    = errors.New("transport: corrupt frame")
	ErrTooLarge   = fmt.Errorf("transport: payload exceeds %d bytes", MaxPayload)
)

// Header is the decoded MPDP1 fixed header.
type Header struct {
	Flags     uint8
	PathID    uint16
	FlowID    uint64
	Seq       uint64 // per-flow global sequence
	PathSeq   uint64 // per-path monotone counter
	SendNanos int64  // sender clock, unix nanoseconds
}

// IsAck reports whether the frame is an acknowledgement.
func (h *Header) IsAck() bool { return h.Flags&FlagAck != 0 }

// IsDup reports whether the frame is a hedged duplicate copy.
func (h *Header) IsDup() bool { return h.Flags&FlagDup != 0 }

// EncodedLen returns the wire size of a frame with the given payload size.
func EncodedLen(payloadLen int) int { return HeaderLen + payloadLen }

// putHeader stores h plus the payload length into dst[0:HeaderLen].
// dst must be at least HeaderLen bytes.
func putHeader(dst []byte, h *Header, payloadLen int) {
	_ = dst[HeaderLen-1] // one bound check for the whole header
	copy(dst[0:4], Magic[:])
	dst[4] = Version
	dst[5] = h.Flags
	binary.LittleEndian.PutUint16(dst[6:8], h.PathID)
	binary.LittleEndian.PutUint64(dst[8:16], h.FlowID)
	binary.LittleEndian.PutUint64(dst[16:24], h.Seq)
	binary.LittleEndian.PutUint64(dst[24:32], h.PathSeq)
	binary.LittleEndian.PutUint64(dst[32:40], uint64(h.SendNanos))
	binary.LittleEndian.PutUint32(dst[40:44], uint32(payloadLen))
}

// AppendFrame appends the encoded frame to buf and returns the extended
// slice. With a pre-sized buf (cap >= len(buf)+HeaderLen+len(payload)) it
// performs zero allocations — the sender's per-path scratch buffers keep
// the hot path alloc-free (CI-gated by BenchmarkFrameEncode).
//
//mpdp:hotpath bench=BenchmarkFrameEncode
func AppendFrame(buf []byte, h *Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return buf, ErrTooLarge
	}
	off := len(buf)
	n := HeaderLen + len(payload)
	if cap(buf)-off < n {
		//lint:allow hotalloc cold grow path: runs only when the caller undersized buf; pre-sized buffers never reach it
		grown := make([]byte, off, off+n)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+n]
	putHeader(buf[off:], h, len(payload))
	copy(buf[off+HeaderLen:], payload)
	return buf, nil
}

// DecodeFrame parses one MPDP1 frame from b. The returned payload aliases
// b (zero copy); callers that reuse the read buffer must copy it before
// the next read. Every failure mode returns a typed error — the decoder
// never panics on arbitrary input (fuzz-enforced).
//
//mpdp:hotpath bench=BenchmarkFrameDecode
func DecodeFrame(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, nil, ErrCorrupt
	}
	if b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return h, nil, ErrBadMagic
	}
	if b[4] != Version {
		return h, nil, ErrBadVersion
	}
	flags := b[5]
	if flags&^flagsKnown != 0 {
		return h, nil, ErrCorrupt
	}
	plen := binary.LittleEndian.Uint32(b[40:44])
	if plen > MaxPayload {
		return h, nil, ErrTooLarge
	}
	if len(b) != HeaderLen+int(plen) {
		// A datagram carries exactly one frame; trailing or missing bytes
		// mean truncation or tampering, never a second frame.
		return h, nil, ErrCorrupt
	}
	if flags&FlagAck != 0 && plen != 0 {
		return h, nil, ErrCorrupt
	}
	h.Flags = flags
	h.PathID = binary.LittleEndian.Uint16(b[6:8])
	h.FlowID = binary.LittleEndian.Uint64(b[8:16])
	h.Seq = binary.LittleEndian.Uint64(b[16:24])
	h.PathSeq = binary.LittleEndian.Uint64(b[24:32])
	h.SendNanos = int64(binary.LittleEndian.Uint64(b[32:40]))
	return h, b[HeaderLen : HeaderLen+int(plen)], nil
}
