package transport

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden frames")

// goldenFrames are the canonical fixtures: one of each frame shape the
// protocol produces. Their encodings are pinned byte-for-byte under
// testdata/ — any codec change that alters the wire layout fails TestGolden
// until the format version is bumped and the files are regenerated with
// `go test ./internal/transport -run TestGolden -update`.
func goldenFrames() []struct {
	name    string
	h       Header
	payload []byte
} {
	return []struct {
		name    string
		h       Header
		payload []byte
	}{
		{
			name:    "data",
			h:       Header{PathID: 1, FlowID: 0xdeadbeefcafe0001, Seq: 42, PathSeq: 17, SendNanos: 1700000000123456789},
			payload: []byte("hello multipath"),
		},
		{
			name:    "dup",
			h:       Header{Flags: FlagDup, PathID: 2, FlowID: 0xdeadbeefcafe0001, Seq: 42, PathSeq: 9, SendNanos: 1700000000123456790},
			payload: []byte("hello multipath"),
		},
		{
			name: "ack",
			h:    Header{Flags: FlagAck, PathID: 1, Seq: 12345, PathSeq: 12400, SendNanos: 1700000000123450000},
		},
		{
			name:    "probe",
			h:       Header{Flags: FlagProbe, PathID: 3, FlowID: 7, Seq: 0, PathSeq: 1, SendNanos: 1},
			payload: []byte{0xde, 0xad},
		},
		{
			name:    "echo",
			h:       Header{Flags: FlagEcho, PathID: 0, FlowID: 7, Seq: 3, PathSeq: 4, SendNanos: 1700000000123456791},
			payload: bytes.Repeat([]byte{0xab}, 64),
		},
	}
}

func TestGolden(t *testing.T) {
	for _, g := range goldenFrames() {
		enc, err := AppendFrame(nil, &g.h, g.payload)
		if err != nil {
			t.Fatalf("%s: encode: %v", g.name, err)
		}
		path := filepath.Join("testdata", g.name+".frame")
		if *updateGolden {
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatalf("%s: write golden: %v", g.name, err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: read golden (run with -update to create): %v", g.name, err)
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("%s: encoding drifted from golden bytes:\n got %x\nwant %x", g.name, enc, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, g := range goldenFrames() {
		enc, err := AppendFrame(nil, &g.h, g.payload)
		if err != nil {
			t.Fatalf("%s: encode: %v", g.name, err)
		}
		if len(enc) != EncodedLen(len(g.payload)) {
			t.Fatalf("%s: encoded %d bytes, want %d", g.name, len(enc), EncodedLen(len(g.payload)))
		}
		h, payload, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", g.name, err)
		}
		if h != g.h {
			t.Errorf("%s: header round trip: got %+v want %+v", g.name, h, g.h)
		}
		if !bytes.Equal(payload, g.payload) {
			t.Errorf("%s: payload round trip mismatch", g.name)
		}
		// Re-encode must be byte-identical (the fuzz target's property, on
		// the canonical corpus).
		re, err := AppendFrame(nil, &h, payload)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", g.name, err)
		}
		if !bytes.Equal(re, enc) {
			t.Errorf("%s: re-encode not byte-identical", g.name)
		}
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	h := Header{FlowID: 1, Seq: 2, PathSeq: 3, SendNanos: 4}
	payload := bytes.Repeat([]byte{0x55}, 128)
	buf := make([]byte, 0, 4096)
	out, err := AppendFrame(buf, &h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendFrame reallocated despite sufficient capacity")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid, err := AppendFrame(nil, &Header{FlowID: 1, Seq: 1, PathSeq: 1, SendNanos: 1}, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short", func(b []byte) []byte { return b[:HeaderLen-1] }, ErrCorrupt},
		{"empty", func(b []byte) []byte { return nil }, ErrCorrupt},
		{"magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion},
		{"flags", func(b []byte) []byte { b[5] = 0x80; return b }, ErrCorrupt},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrCorrupt},
		{"trailing-bytes", func(b []byte) []byte { return append(b, 0) }, ErrCorrupt},
		{"huge-length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[40:44], MaxPayload+1)
			return b
		}, ErrTooLarge},
		{"ack-with-payload", func(b []byte) []byte { b[5] = FlagAck; return b }, ErrCorrupt},
	}
	for _, tc := range cases {
		b := append([]byte(nil), valid...)
		if _, _, err := DecodeFrame(tc.mut(b)); err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := AppendFrame(nil, &Header{}, make([]byte, MaxPayload+1)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// BenchmarkFrameEncode is the CI-gated allocation budget for the encode hot
// path: with a reused buffer, AppendFrame must not allocate.
func BenchmarkFrameEncode(b *testing.B) {
	h := Header{PathID: 1, FlowID: 0xfeed, Seq: 1, PathSeq: 1, SendNanos: 1}
	payload := bytes.Repeat([]byte{0x42}, 1024)
	buf := make([]byte, 0, EncodedLen(len(payload)))
	b.ReportAllocs()
	b.SetBytes(int64(EncodedLen(len(payload))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Seq++
		h.PathSeq++
		out, err := AppendFrame(buf[:0], &h, payload)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	payload := bytes.Repeat([]byte{0x42}, 1024)
	enc, err := AppendFrame(nil, &Header{FlowID: 9, Seq: 1, PathSeq: 1, SendNanos: 1}, payload)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}
