package transport

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzFrameDecode is the MPDP1 decoder's robustness target, matching the
// fuzzing discipline of internal/packet and internal/obs: on arbitrary
// bytes the decoder must never panic and never alias out of bounds, and
// any input it accepts must re-encode byte-identically (the codec is a
// bijection on its valid domain).
//
// The corpus is seeded from the golden frames in testdata/ plus targeted
// mutants of each validation branch; `go test -fuzz=FuzzFrameDecode
// ./internal/transport` explores further.
func FuzzFrameDecode(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.frame"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no golden frames in testdata/ (%v)", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Branch-targeted mutants: truncated, magic-flip, version-flip,
		// extended.
		if len(data) > 4 {
			f.Add(data[:len(data)-1])
			flip := append([]byte(nil), data...)
			flip[0] ^= 0xff
			f.Add(flip)
			ver := append([]byte(nil), data...)
			ver[4] ^= 0x7f
			f.Add(ver)
			f.Add(append(append([]byte(nil), data...), 0xaa))
		}
	}
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeFrame(data) // must not panic
		if err != nil {
			return
		}
		// Accepted frames obey the documented envelope.
		if len(payload) > MaxPayload {
			t.Fatalf("decoder accepted %d-byte payload (max %d)", len(payload), MaxPayload)
		}
		if h.IsAck() && len(payload) != 0 {
			t.Fatal("decoder accepted an ack with a payload")
		}
		if len(data) != EncodedLen(len(payload)) {
			t.Fatalf("accepted frame of %d bytes but EncodedLen says %d", len(data), EncodedLen(len(payload)))
		}
		// Round trip: re-encoding the decoded frame must reproduce the
		// input exactly.
		re, err := AppendFrame(nil, &h, payload)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data)
		}
	})
}
