package transport

import (
	"sync"
	"time"

	"mpdp/internal/xrand"
)

// Impairment is the fault verdict for one outgoing wire frame.
type Impairment struct {
	// Drop discards the frame before the socket write: a wire loss the
	// receiver can only see as a path-seq gap.
	Drop bool
	// Delay defers the write by this long (0 = none): wire latency
	// inflation without loss.
	Delay time.Duration
	// Duplicate writes the frame twice: a wire-level duplication (distinct
	// from hedging — same path, same path seq), which the receiver's
	// per-path wire dedup must absorb without corrupting ack accounting.
	Duplicate bool
}

// Impairer intercepts frames on their way to a path's socket — the wire
// transport's fault-injection hook, mirroring internal/fault's NF
// error-mode semantics (seeded fractions of packets harmed while active)
// at the link layer instead of inside a chain. Implementations must be
// safe for use from the sender's Send goroutine and any delayed-write
// timers.
type Impairer interface {
	Impair(path int, h *Header) Impairment
}

// ImpairConfig parameterizes RandomImpairer: per-frame probabilities, an
// optional target path, and the seed that makes an impaired run as
// reproducible as a clean one (given a deterministic frame order).
type ImpairConfig struct {
	// Path selects the impaired path; -1 applies to every path (a uniform
	// wire error rate that must NOT get anyone quarantined unfairly).
	Path int
	// DropFrac is the probability a frame is discarded.
	DropFrac float64
	// DelayFrac is the probability a frame is delayed by Delay.
	DelayFrac float64
	Delay     time.Duration
	// DupFrac is the probability a frame is written twice.
	DupFrac float64
	// Seed drives the randomness (default 1).
	Seed uint64
}

// RandomImpairer applies seeded random drop/delay/duplicate to frames of
// one path (or all paths).
type RandomImpairer struct {
	cfg ImpairConfig

	mu      sync.Mutex
	rng     *xrand.Rand
	dropped uint64
	delayed uint64
	duped   uint64
}

// NewRandomImpairer builds the impairer; zero-valued fractions disable the
// corresponding fault.
func NewRandomImpairer(cfg ImpairConfig) *RandomImpairer {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &RandomImpairer{cfg: cfg, rng: xrand.New(cfg.Seed)}
}

// Impair implements Impairer.
func (im *RandomImpairer) Impair(path int, h *Header) Impairment {
	if im.cfg.Path != -1 && path != im.cfg.Path {
		return Impairment{}
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	var out Impairment
	if im.cfg.DropFrac > 0 && im.rng.Bool(im.cfg.DropFrac) {
		im.dropped++
		out.Drop = true
		return out
	}
	if im.cfg.DelayFrac > 0 && im.rng.Bool(im.cfg.DelayFrac) {
		im.delayed++
		out.Delay = im.cfg.Delay
	}
	if im.cfg.DupFrac > 0 && im.rng.Bool(im.cfg.DupFrac) {
		im.duped++
		out.Duplicate = true
	}
	return out
}

// Counts returns how many frames were dropped, delayed, and duplicated.
func (im *RandomImpairer) Counts() (dropped, delayed, duplicated uint64) {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.dropped, im.delayed, im.duped
}

// BurstImpairConfig parameterizes BurstImpairer: episodic delay windows on
// one path, the last-mile fluctuation shape the paper targets (a neighbor
// VM wakes up, the path degrades for a stretch, then recovers) — as
// opposed to RandomImpairer's i.i.d. per-frame faults, which no
// telemetry-driven scheduler can anticipate.
type BurstImpairConfig struct {
	// Path selects the impaired path; -1 applies to every path.
	Path int
	// Period is the cycle length in frames; Length is how many frames at
	// the head of each cycle are inside the burst. Frames are counted
	// across ALL paths, so the burst window advances like wall time even
	// when a scheduler steers traffic away from the impaired path.
	Period, Length uint64
	// Delay is added to every impaired-path frame inside a burst.
	Delay time.Duration
}

// BurstImpairer delays impaired-path frames during periodic burst windows.
// Frame-counted (not clock-driven), so a run's fault pattern depends only
// on send order.
type BurstImpairer struct {
	cfg BurstImpairConfig

	mu      sync.Mutex
	n       uint64
	delayed uint64
}

// NewBurstImpairer builds the impairer; degenerate geometry (zero period,
// or bursts at least as long as the period) clamps to an always-on delay.
func NewBurstImpairer(cfg BurstImpairConfig) *BurstImpairer {
	if cfg.Period == 0 {
		cfg.Period = 1
	}
	if cfg.Length > cfg.Period {
		cfg.Length = cfg.Period
	}
	return &BurstImpairer{cfg: cfg}
}

// Impair implements Impairer.
func (im *BurstImpairer) Impair(path int, h *Header) Impairment {
	im.mu.Lock()
	defer im.mu.Unlock()
	pos := im.n % im.cfg.Period
	im.n++
	if pos >= im.cfg.Length {
		return Impairment{}
	}
	if im.cfg.Path != -1 && path != im.cfg.Path {
		return Impairment{}
	}
	im.delayed++
	return Impairment{Delay: im.cfg.Delay}
}

// Delayed returns how many frames the burst windows caught.
func (im *BurstImpairer) Delayed() uint64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.delayed
}
