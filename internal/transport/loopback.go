package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/live"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
)

// LoopbackConfig parameterizes the hermetic self-benchmark: a sender and a
// receiver in one process, joined by real UDP sockets over 127.0.0.1 — the
// full wire path (encode → sendto → recvfrom → dedup → reorder → deliver)
// with no external endpoint, so CI can exercise the transport end to end.
type LoopbackConfig struct {
	// Paths is the number of UDP paths (default 2).
	Paths int
	// Scheduler and HedgeK select the path scheduler (default hedge, K=2).
	Scheduler SchedulerName
	HedgeK    int
	// Deadline is the per-packet latency budget: SchedDeadline schedules
	// against it, and — for every scheduler — deliveries are scored
	// hit/miss against it when it is > 0 (default 2 ms with SchedDeadline).
	Deadline time.Duration
	// DeadlineMargin is SchedDeadline's jitter multiplier (default 3).
	DeadlineMargin float64
	// DupBudgetBytesPerSec and DupBudgetBurst configure SchedDeadline's
	// duplication-bytes token bucket (both zero = duplication off).
	DupBudgetBytesPerSec float64
	DupBudgetBurst       float64
	// Metrics, when non-nil, receives the sender's mpdp_dup_bytes_total /
	// mpdp_deadline_* / mpdp_dup_budget_* counters plus the run's
	// deadline-hit counters.
	Metrics *live.Registry
	// Flows spreads traffic across this many flow IDs (default 8).
	Flows int
	// Payload is the data-frame payload size in bytes (default 256).
	Payload int
	// Packets stops after this many application packets (0 = until
	// Duration elapses).
	Packets uint64
	// Duration stops the send loop after this long (default 3 s when
	// Packets is 0).
	Duration time.Duration
	// Rate paces sends at this many packets/sec (0 = as fast as the wire
	// accepts).
	Rate float64
	// Window bounds unresolved packets in flight (sent minus delivered,
	// default 256): UDP has no flow control, so the harness supplies its
	// own backpressure — both ends live in one process — instead of
	// blasting the loopback socket buffers into overflow (SO_RCVBUF is
	// silently capped by net.core.rmem_max, so the kernel's headroom is
	// smaller than the 4 MB the receiver asks for). A window stalled by
	// genuine loss releases after a grace period rather than deadlocking.
	Window uint64
	// Health tunes the sender's per-path health machines.
	Health core.HealthConfig
	// Impairer, when non-nil, injects faults into outgoing frames.
	Impairer Impairer
	// ReorderTimeout is the receiver's gap timeout (default 5 ms).
	ReorderTimeout time.Duration
	// EchoBack asks the receiver to reflect frames for per-frame RTT.
	EchoBack bool
	// Spans, when non-nil, records per-stage wire latency.
	Spans *Spans
	// SLO, when non-nil, is fed every delivery (e2e latency) and loss.
	SLO *live.SLOTracker
	// Stop, when non-nil, ends the send loop early when closed (the
	// gateway wires SIGINT here).
	Stop <-chan struct{}
	// OnDeliver, when non-nil, observes each in-order delivery (driver
	// goroutine; packet owned by the transport after return).
	OnDeliver func(p *packet.Packet)
	// SenderTrace and ReceiverTrace, when non-nil, attach wire flight
	// recorders to the two endpoints. Both should be built with the same
	// sample rate so the merged trace joins end to end.
	SenderTrace   *obs.WireRecorder
	ReceiverTrace *obs.WireRecorder
	// OnStart, when non-nil, runs once after both endpoints are up and
	// before the first packet is sent — the hook the tail sentinel uses
	// to attach its tick loop to the live Sender/Receiver pair.
	OnStart func(send *Sender, recv *Receiver)
}

// LoopbackReport is the run's outcome: counters from both ends, reorder
// cost, and the invariant verdict.
type LoopbackReport struct {
	Elapsed   time.Duration `json:"elapsed_ns"`
	Packets   uint64        `json:"packets"`   // application packets sent
	Frames    uint64        `json:"frames"`    // wire frames (hedge copies included)
	Delivered uint64        `json:"delivered"` // in-order, dedup-clean deliveries
	Lost      uint64        `json:"lost"`
	DupDrops  uint64        `json:"dup_drops"` // hedged siblings absorbed pre-reorder
	WireDups  uint64        `json:"wire_dups"` // wire-level duplicates absorbed per path
	// Deadline accounting, populated when Deadline > 0: deliveries whose
	// e2e latency fit (or blew) the budget.
	DeadlineHits   uint64           `json:"deadline_hits,omitempty"`
	DeadlineMisses uint64           `json:"deadline_misses,omitempty"`
	Sender         SenderStats      `json:"sender"`
	Receiver       ReceiverStats    `json:"receiver"`
	Violations     []string         `json:"violations,omitempty"` // capped at 16 messages
	NViolations    uint64           `json:"n_violations"`         // exact count
	Spans          []live.StageSpan `json:"spans,omitempty"`
}

// Verify returns the invariant verdict: nil when the run surfaced every
// delivery exactly once, in order, with nothing invented.
func (r *LoopbackReport) Verify() error {
	if r.NViolations == 0 {
		return nil
	}
	return fmt.Errorf("transport invariant: %d violation(s), first: %s",
		r.NViolations, r.Violations[0])
}

// RunLoopback drives a complete sender→receiver run over loopback UDP and
// returns the verified report. Every delivery is checked for order and
// uniqueness by a Verifier; any violation is a bug in the transport, not
// in the caller.
func RunLoopback(cfg LoopbackConfig) (*LoopbackReport, error) {
	if cfg.Paths == 0 {
		cfg.Paths = 2
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedHedge
	}
	if cfg.Flows == 0 {
		cfg.Flows = 8
	}
	if cfg.Payload == 0 {
		cfg.Payload = 256
	}
	if cfg.Packets == 0 && cfg.Duration == 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Window == 0 {
		cfg.Window = 256
	}
	if cfg.Scheduler == SchedDeadline && cfg.Deadline == 0 {
		cfg.Deadline = 2 * time.Millisecond
	}

	// Deadline scoring: e2e latency vs the configured budget, counted for
	// every scheduler so runs are comparable on the same axis. Atomics —
	// the receiver's driver goroutine writes, the harness reads at the end.
	var dlHits, dlMisses atomic.Uint64
	pktDeadlineNanos := cfg.Deadline.Nanoseconds()

	verifier := NewVerifier()
	addrs := make([]string, cfg.Paths)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	recv, err := Listen(ReceiverConfig{
		Addrs:          addrs,
		ReorderTimeout: cfg.ReorderTimeout,
		EchoBack:       cfg.EchoBack,
		Spans:          cfg.Spans,
		Verifier:       verifier,
		Trace:          cfg.ReceiverTrace,
		Deliver: func(p *packet.Packet) {
			if cfg.SLO != nil {
				cfg.SLO.ObserveDelivery(int64(p.Delivered - p.Ingress))
			}
			if pktDeadlineNanos > 0 {
				if int64(p.Delivered-p.Ingress) <= pktDeadlineNanos {
					dlHits.Add(1)
				} else {
					dlMisses.Add(1)
				}
			}
			if cfg.OnDeliver != nil {
				cfg.OnDeliver(p)
			}
		},
		OnLost: func(p *packet.Packet) {
			if cfg.SLO != nil {
				cfg.SLO.ObserveLoss()
			}
		},
	})
	if err != nil {
		return nil, err
	}

	paths := make([]PathConfig, cfg.Paths)
	for i, a := range recv.Addrs() {
		paths[i] = PathConfig{RemoteAddr: a}
	}
	send, err := Dial(SenderConfig{
		Paths:                paths,
		Scheduler:            cfg.Scheduler,
		HedgeK:               cfg.HedgeK,
		Deadline:             cfg.Deadline,
		DeadlineMargin:       cfg.DeadlineMargin,
		DupBudgetBytesPerSec: cfg.DupBudgetBytesPerSec,
		DupBudgetBurst:       cfg.DupBudgetBurst,
		Health:               cfg.Health,
		Impairer:             cfg.Impairer,
		Spans:                cfg.Spans,
		Verifier:             verifier,
		Trace:                cfg.SenderTrace,
	})
	if err != nil {
		recv.Close() //lint:allow erroreat teardown on the error path
		return nil, err
	}
	if cfg.Metrics != nil {
		send.RegisterMetrics(cfg.Metrics)
		cfg.Metrics.CounterFunc("mpdp_deadline_hit_total", dlHits.Load)
		cfg.Metrics.CounterFunc("mpdp_deadline_miss_total", dlMisses.Load)
	}

	if cfg.OnStart != nil {
		cfg.OnStart(send, recv)
	}

	payload := make([]byte, cfg.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := nowNanos()
	deadlineNanos := int64(0)
	if cfg.Duration > 0 {
		deadlineNanos = start + cfg.Duration.Nanoseconds()
	}
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}

	var sent uint64
	var sendErr error
sendLoop:
	for {
		if cfg.Packets > 0 && sent >= cfg.Packets {
			break
		}
		if deadlineNanos > 0 && nowNanos() >= deadlineNanos {
			break
		}
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				break sendLoop
			default:
			}
		}
		// Backpressure: stall while a window's worth of packets is
		// unresolved. A packet resolves by in-order delivery or by the
		// receiver's gap timeout abandoning its sequence number — counting
		// abandoned seqs keeps a lossy non-hedged run flowing at the
		// reorder timeout's pace instead of paying the grace period per
		// packet. The grace release remains as a backstop for packets that
		// never resolve either way (a trailing loss with no successor
		// leaves no gap for the timeout to close).
		stallUntil := int64(0)
		for sent-(recv.delivered.Load()+recv.driver.gapSkipped.Load()) >= cfg.Window {
			if stallUntil == 0 {
				stallUntil = nowNanos() + (100 * time.Millisecond).Nanoseconds()
			} else if nowNanos() >= stallUntil {
				break
			}
			time.Sleep(200 * time.Microsecond) //lint:allow determinism wall-clock backpressure on a real wire
		}
		flow := uint64(1 + sent%uint64(cfg.Flows))
		if _, err := send.Send(flow, payload); err != nil {
			// A refused send already fed the health machine; keep going so
			// the run measures recovery rather than aborting on first fault.
			sendErr = err
		}
		sent++
		if interval > 0 {
			time.Sleep(interval) //lint:allow determinism wall-clock send pacing on a real wire
		}
	}

	// Drain: give in-flight frames, acks and gap timers time to settle.
	// Closing early discards datagrams still queued in the kernel, so only
	// stop once delivery has been quiet for several consecutive polls (a
	// single quiet poll is routine on a loaded machine).
	drainDeadline := nowNanos() + (2*time.Second +
		8*maxDuration(cfg.ReorderTimeout, 5*time.Millisecond)).Nanoseconds()
	prev := ^uint64(0)
	stable := 0
	for nowNanos() < drainDeadline && stable < 5 {
		time.Sleep(20 * time.Millisecond) //lint:allow determinism drain polling on a real wire
		st := recv.Stats()
		settled := st.Delivered + st.Lost + st.DupDrops
		if settled == prev {
			stable++
		} else {
			stable, prev = 0, settled
		}
	}

	if err := send.Close(); err != nil {
		return nil, fmt.Errorf("transport: sender close: %w", err)
	}
	if err := recv.Close(); err != nil {
		return nil, fmt.Errorf("transport: receiver close: %w", err)
	}

	elapsed := time.Duration(nowNanos() - start)
	ss := send.Stats()
	rs := recv.Stats()
	var wireDups uint64
	for _, p := range rs.Paths {
		wireDups += p.WireDups
	}
	// Finish appends the end-of-run conservation checks; the verdict is
	// re-derived from the recorded list by (*LoopbackReport).Verify.
	_ = verifier.Finish()
	msgs, n := verifier.Violations()
	report := &LoopbackReport{
		Elapsed:        elapsed,
		Packets:        ss.Packets,
		Frames:         ss.Frames,
		Delivered:      rs.Delivered,
		Lost:           rs.Lost,
		DupDrops:       rs.DupDrops,
		WireDups:       wireDups,
		DeadlineHits:   dlHits.Load(),
		DeadlineMisses: dlMisses.Load(),
		Sender:         ss,
		Receiver:       rs,
		Violations:     msgs,
		NViolations:    n,
		Spans:          cfg.Spans.StageSnapshot(),
	}
	if sendErr != nil && report.Delivered == 0 {
		return report, fmt.Errorf("transport: no deliveries; last send error: %w", sendErr)
	}
	return report, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
