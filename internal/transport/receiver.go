package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// ReceiverConfig configures a multipath Receiver.
type ReceiverConfig struct {
	// Addrs are the listen addresses, one per path (use "127.0.0.1:0" for
	// ephemeral loopback ports and read them back with Addrs()).
	Addrs []string
	// ReorderTimeout is the gap timeout of the reorder stage: how long a
	// hole blocks successors before being declared lost (default 5 ms).
	ReorderTimeout time.Duration
	// DedupWindow is the per-flow first-copy-wins window in sequence
	// numbers (default DefaultDedupWindow).
	DedupWindow uint64
	// Queue is the depth of the socket→reorder channel (default 4096).
	Queue int
	// AckEvery sends a cumulative ack after this many data frames on a
	// path (default 32).
	AckEvery int
	// AckInterval bounds ack latency on a quiet path: a sweeper acks any
	// path with unreported progress at this period (default 2 ms). The
	// sweep is also what lets the sender's gap accounting conclude losses
	// on a path that went quiet mid-burst.
	AckInterval time.Duration
	// EchoBack reflects every data frame to its source with FlagEcho set
	// (header only), giving the sender per-frame RTT samples.
	EchoBack bool
	// Spans, when non-nil, records socket-read/reorder/deliver/e2e stages.
	Spans *Spans
	// Deliver receives packets in per-flow order on the reorder driver
	// goroutine. The packet is owned by the callback.
	Deliver func(p *packet.Packet)
	// OnLost is invoked (driver goroutine) for stragglers that arrive
	// after their sequence was timed out past.
	OnLost func(p *packet.Packet)
	// Verifier, when non-nil, is fed every in-order delivery.
	Verifier *Verifier
	// Trace, when non-nil, records sampled per-frame lifecycle events
	// (rx, dedup verdicts, deliver, loss, ack emission) into a wire flight
	// recorder. The sampling predicate is shared with the sender's
	// recorder, so both endpoints capture the same packets. Nil disables
	// every capture site: an untraced receiver behaves byte-identically.
	Trace *obs.WireRecorder
}

// recvPath is one listening socket plus its ack bookkeeping, shared between
// the path's reader goroutine and the ack sweeper under mu.
type recvPath struct {
	id   uint16
	conn *net.UDPConn

	mu        sync.Mutex
	src       *net.UDPAddr // last data source: where acks go
	wire      *dedupWindow // per-path wire dedup on PathSeq
	high      uint64       // highest PathSeq seen
	recv      uint64       // distinct frames received
	lastSend  int64        // SendNanos of the newest data frame (RTT echo)
	sinceAck  int
	ackedRecv uint64 // recv as of the last ack sent

	frames   uint64 // raw datagrams that decoded as data frames
	wireDups uint64 // wire-level duplicates (same PathSeq twice)
	badFrame uint64 // datagrams DecodeFrame rejected
}

// Receiver listens on N UDP paths, acknowledges per-path receipt (feeding
// the sender's loss detection), deduplicates hedged copies, and funnels
// everything through the core reorder buffer for in-order delivery.
type Receiver struct {
	cfg    ReceiverConfig
	paths  []*recvPath
	driver *reorderDriver

	delivered atomic.Uint64
	lost      atomic.Uint64

	wg      sync.WaitGroup
	sweepWG sync.WaitGroup
	stop    chan struct{}
}

// Listen binds every path and starts the readers, the reorder driver, and
// the ack sweeper.
func Listen(cfg ReceiverConfig) (*Receiver, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("transport: no listen addresses")
	}
	if cfg.ReorderTimeout == 0 {
		cfg.ReorderTimeout = 5 * time.Millisecond
	}
	if cfg.Queue == 0 {
		cfg.Queue = 4096
	}
	if cfg.AckEvery == 0 {
		cfg.AckEvery = 32
	}
	if cfg.AckInterval == 0 {
		cfg.AckInterval = 2 * time.Millisecond
	}
	r := &Receiver{cfg: cfg, stop: make(chan struct{})}
	for i, addr := range cfg.Addrs {
		laddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			r.closeConns()
			return nil, fmt.Errorf("transport: path %d listen %q: %w", i, addr, err)
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			r.closeConns()
			return nil, fmt.Errorf("transport: path %d listen: %w", i, err)
		}
		// Best-effort: a deep kernel buffer absorbs sender bursts that
		// outrun the reader goroutine (loss here is indistinguishable from
		// wire loss, so buy as much headroom as the host allows).
		conn.SetReadBuffer(4 << 20) //lint:allow erroreat best-effort socket buffer sizing
		r.paths = append(r.paths, &recvPath{
			id:   uint16(i),
			conn: conn,
			wire: newDedupWindow(DefaultDedupWindow),
		})
	}
	r.driver = newReorderDriver(
		func() sim.Time { return sim.Time(nowNanos()) },
		cfg.ReorderTimeout, cfg.DedupWindow, r.deliver, r.onLost, cfg.Queue, cfg.Trace)
	r.driver.start()
	for _, p := range r.paths {
		r.wg.Add(1)
		go r.readLoop(p)
	}
	r.sweepWG.Add(1)
	go r.ackSweep()
	return r, nil
}

// Addrs returns the bound address of every path, in path order.
func (r *Receiver) Addrs() []string {
	out := make([]string, len(r.paths))
	for i, p := range r.paths {
		out[i] = p.conn.LocalAddr().String()
	}
	return out
}

// SetTraceSampling retunes the attached wire recorder's sampling rate
// (no-op returning 0 when untraced) — the receiver half of the
// sentinel's capture ramp. Both ends must ramp together: the merge layer
// only joins packets sampled at both endpoints.
func (r *Receiver) SetTraceSampling(every int) int {
	if r.cfg.Trace == nil {
		return 0
	}
	return r.cfg.Trace.SetSampleEvery(every)
}

func (r *Receiver) closeConns() {
	for _, p := range r.paths {
		if p.conn != nil {
			p.conn.Close() //lint:allow erroreat best-effort teardown of a UDP socket
		}
	}
}

// deliver runs on the reorder driver goroutine for each in-order release.
func (r *Receiver) deliver(p *packet.Packet) {
	now := nowNanos()
	if sp := r.cfg.Spans; sp != nil {
		sp.Reorder.Record(now - int64(p.Done))
		sp.E2E.Record(now - int64(p.Ingress))
	}
	if v := r.cfg.Verifier; v != nil {
		v.NoteDelivered(p.FlowID, p.Seq)
	}
	r.delivered.Add(1)
	// Capture identity before the callback: the packet belongs to the
	// application once fn returns.
	flowID, seq, pathID, pathSeq, done := p.FlowID, p.Seq, p.PathID, p.PathSeq, p.Done
	if fn := r.cfg.Deliver; fn != nil {
		t0 := nowNanos()
		fn(p)
		if sp := r.cfg.Spans; sp != nil {
			sp.Deliver.Record(nowNanos() - t0)
		}
	}
	// The deliver event closes the timeline: Path/PathSeq name the
	// admitted copy, A its arrival, B the pre-callback release time.
	if tr := r.cfg.Trace; tr != nil && tr.Sampled(flowID, seq) {
		tr.Emit(obs.WireEvent{Nanos: nowNanos(), Kind: obs.WireDeliver,
			Path: int32(pathID), FlowID: flowID, Seq: seq, PathSeq: pathSeq,
			A: int64(done), B: now})
	}
}

func (r *Receiver) onLost(p *packet.Packet) {
	r.lost.Add(1)
	if tr := r.cfg.Trace; tr != nil && tr.Sampled(p.FlowID, p.Seq) {
		tr.Emit(obs.WireEvent{Nanos: nowNanos(), Kind: obs.WireLost,
			Path: int32(p.PathID), FlowID: p.FlowID, Seq: p.Seq, PathSeq: p.PathSeq})
	}
	if fn := r.cfg.OnLost; fn != nil {
		fn(p)
	}
}

// readLoop pulls datagrams off one path's socket until it is closed.
func (r *Receiver) readLoop(p *recvPath) {
	defer r.wg.Done()
	buf := make([]byte, HeaderLen+MaxPayload)
	for {
		t0 := nowNanos()
		n, src, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		now := nowNanos()
		if sp := r.cfg.Spans; sp != nil {
			sp.SocketRead.Record(now - t0)
		}
		h, payload, err := DecodeFrame(buf[:n])
		if err != nil {
			p.mu.Lock()
			p.badFrame++
			p.mu.Unlock()
			continue
		}
		if h.IsAck() {
			continue // acks flow sender-ward only
		}

		p.mu.Lock()
		p.src = src
		p.frames++
		fresh := p.wire.Admit(h.PathSeq)
		if fresh {
			if h.PathSeq > p.high {
				p.high = h.PathSeq
			}
			p.recv++
			p.lastSend = h.SendNanos
			p.sinceAck++
		} else {
			p.wireDups++
		}
		ackNow := p.sinceAck >= r.cfg.AckEvery
		var ack Header
		if ackNow {
			ack = p.ackHeaderLocked()
		}
		p.mu.Unlock()

		// Emits stay outside p.mu (the recorder has its own lock). A is the
		// header's SendNanos echo — the sender-clock accept time — so a
		// receiver-only trace can still anchor attribution.
		tr := r.cfg.Trace
		if tr != nil && tr.Sampled(h.FlowID, h.Seq) {
			tr.Emit(obs.WireEvent{Nanos: now, Kind: obs.WireRx,
				Path: int32(h.PathID), FlowID: h.FlowID, Seq: h.Seq,
				PathSeq: h.PathSeq, A: h.SendNanos, B: int64(h.Flags)})
			if !fresh {
				tr.Emit(obs.WireEvent{Nanos: now, Kind: obs.WireDedup,
					Path: int32(h.PathID), FlowID: h.FlowID, Seq: h.Seq,
					PathSeq: h.PathSeq, A: 1})
			}
		}
		if fresh {
			if sp := r.cfg.Spans; sp != nil && sp.Flight != nil {
				sp.Flight.Record(now - h.SendNanos)
			}
		}

		// Socket writes stay outside the lock.
		if ackNow {
			r.writeControl(p, ack, src)
			if tr != nil {
				tr.Emit(obs.WireEvent{Nanos: nowNanos(), Kind: obs.WireAckTx,
					Path: int32(p.id), A: int64(ack.Seq), B: int64(ack.PathSeq)})
			}
		}
		if r.cfg.EchoBack && fresh {
			echo := h
			echo.Flags = FlagEcho
			r.writeControl(p, echo, src)
		}
		if !fresh {
			continue // wire duplicate: already counted, never resubmitted
		}

		data := make([]byte, len(payload))
		copy(data, payload)
		r.driver.in <- &packet.Packet{
			FlowID:  h.FlowID,
			Seq:     h.Seq,
			Data:    data,
			PathID:  int(h.PathID),
			PathSeq: h.PathSeq,
			IsDup:   h.IsDup(),
			Ingress: sim.Time(h.SendNanos),
			Done:    sim.Time(now),
		}
	}
}

// ackHeaderLocked builds the cumulative ack for the path's current state.
// Callers hold p.mu.
func (p *recvPath) ackHeaderLocked() Header {
	p.sinceAck = 0
	p.ackedRecv = p.recv
	return Header{
		Flags:     FlagAck,
		PathID:    p.id,
		FlowID:    0,
		Seq:       p.recv,     // total distinct frames received
		PathSeq:   p.high,     // high-water mark: high-recv = missing below it
		SendNanos: p.lastSend, // RTT echo of the newest data frame
	}
}

// writeControl sends a header-only frame (ack or echo) back to src.
func (r *Receiver) writeControl(p *recvPath, h Header, src *net.UDPAddr) {
	var arr [HeaderLen]byte
	frame, err := AppendFrame(arr[:0], &h, nil)
	if err != nil {
		return // cannot happen: header-only frames always encode
	}
	if _, err := p.conn.WriteToUDP(frame, src); err != nil {
		return // receiver-side ack loss looks like wire loss; sender copes
	}
}

// ackSweep acks any path with unreported progress every AckInterval, so a
// path that went quiet still reports (and the sender can conclude losses).
func (r *Receiver) ackSweep() {
	defer r.sweepWG.Done()
	ticker := time.NewTicker(r.cfg.AckInterval) //lint:allow determinism wall-clock ack pacing for a real wire
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			for _, p := range r.paths {
				p.mu.Lock()
				pending := p.src != nil && (p.recv != p.ackedRecv || p.high > p.recv)
				var ack Header
				var src *net.UDPAddr
				if pending {
					ack = p.ackHeaderLocked()
					src = p.src
				}
				p.mu.Unlock()
				if pending {
					r.writeControl(p, ack, src)
					if tr := r.cfg.Trace; tr != nil {
						tr.Emit(obs.WireEvent{Nanos: nowNanos(), Kind: obs.WireAckTx,
							Path: int32(p.id), A: int64(ack.Seq), B: int64(ack.PathSeq)})
					}
				}
			}
		}
	}
}

// RecvPathStats is one path's receiver-side accounting.
type RecvPathStats struct {
	Path      int    `json:"path"`
	Addr      string `json:"addr"`
	Frames    uint64 `json:"frames"`
	Received  uint64 `json:"received"`
	HighSeq   uint64 `json:"high_seq"`
	WireDups  uint64 `json:"wire_dups"`
	BadFrames uint64 `json:"bad_frames"`
}

// ReceiverStats aggregates the receiver's counters.
type ReceiverStats struct {
	Delivered uint64            `json:"delivered"` // in-order releases to the application
	Lost      uint64            `json:"lost"`      // stragglers past a timeout skip
	DupDrops  uint64            `json:"dup_drops"` // hedged siblings dropped pre-reorder
	Reorder   core.ReorderStats `json:"reorder"`
	Paths     []RecvPathStats   `json:"paths"`
}

// Stats snapshots the receiver. Safe to call while running: driver-owned
// counters are answered by the driver goroutine itself.
func (r *Receiver) Stats() ReceiverStats {
	ds := r.driver.snapshotStats()
	st := ReceiverStats{
		Delivered: r.delivered.Load(),
		Lost:      r.lost.Load(),
		DupDrops:  ds.DupDrops,
		Reorder:   ds.Reorder,
	}
	for _, p := range r.paths {
		// Resolve the socket address before taking p.mu: LocalAddr goes
		// through the net package (kernel-bound) and must not extend the
		// reader goroutines' lock hold time. p.conn is set once at bind.
		addr := p.conn.LocalAddr().String()
		p.mu.Lock()
		st.Paths = append(st.Paths, RecvPathStats{
			Path:      int(p.id),
			Addr:      addr,
			Frames:    p.frames,
			Received:  p.recv,
			HighSeq:   p.high,
			WireDups:  p.wireDups,
			BadFrames: p.badFrame,
		})
		p.mu.Unlock()
	}
	return st
}

// Close stops the readers and the ack sweeper, then drains the reorder
// driver (flushing still-buffered packets in order).
func (r *Receiver) Close() error {
	close(r.stop)
	r.sweepWG.Wait()
	r.closeConns()
	r.wg.Wait()
	r.driver.close()
	return nil
}
