package transport

import (
	"sync/atomic"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// reorderDriver funnels received frames through the existing core.Reorder
// buffer — hole punching, gap timeouts, late-straggler accounting and all —
// by running a private discrete-event simulator whose clock is advanced to
// wall time. One goroutine owns the simulator, the reorder buffer, and the
// dedup state, so none of core's single-threaded machinery needs locks:
// frames flow in over a channel, gap timers fire whenever the clock is
// advanced past them (each submit, plus an idle tick so a silent wire still
// releases stragglers).
type reorderDriver struct {
	clock   func() sim.Time // receiver's monotone unix-nano clock
	sim     *sim.Simulator
	rb      *core.Reorder
	dedup   *dedup
	in      chan *packet.Packet
	stats   chan chan driverStats
	stopped chan struct{}
	tick    time.Duration
	trace   *obs.WireRecorder // nil = wire tracing off

	// gapSkipped mirrors the reorder buffer's abandoned-seq counter after
	// every driver step, so callers applying backpressure (the loopback
	// harness) can treat timed-out losses as resolved without a stats
	// round trip per packet.
	gapSkipped atomic.Uint64

	final driverStats // valid after close()
}

// driverStats is the driver-owned state a snapshot can safely expose.
type driverStats struct {
	Reorder  core.ReorderStats
	DupDrops uint64 // hedged siblings dropped by first-copy-wins dedup
}

// newReorderDriver wires a core.Reorder with the given gap timeout (wall
// nanoseconds) to a wall-clock pump. deliver and onLost run on the driver
// goroutine.
func newReorderDriver(clock func() sim.Time, timeout time.Duration, dedupWindow uint64,
	deliver core.DeliverFunc, onLost core.DeliverFunc, queue int,
	trace *obs.WireRecorder) *reorderDriver {
	s := sim.New()
	// Anchor the simulator at the current wall clock so the first gap
	// timer is scheduled relative to "now", not to 1970.
	s.RunUntil(clock())
	rb := core.NewReorder(s, sim.Duration(timeout.Nanoseconds()), deliver)
	if onLost != nil {
		rb.OnLost(onLost)
	}
	tick := timeout / 4
	if tick <= 0 || tick > 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	return &reorderDriver{
		clock:   clock,
		sim:     s,
		rb:      rb,
		dedup:   newDedup(dedupWindow),
		in:      make(chan *packet.Packet, queue),
		stats:   make(chan chan driverStats),
		stopped: make(chan struct{}),
		tick:    tick,
		trace:   trace,
	}
}

func (d *reorderDriver) start() { go d.run() }

func (d *reorderDriver) run() {
	defer close(d.stopped)
	ticker := time.NewTicker(d.tick) //lint:allow determinism wall-clock pump for the reorder gap timers
	defer ticker.Stop()
	for {
		select {
		case p, ok := <-d.in:
			if !ok {
				// Drain: advance past every armed timer, then flush what
				// remains in per-flow sequence order.
				d.sim.RunUntil(d.clock())
				d.rb.Flush()
				d.final = d.snapshot()
				d.gapSkipped.Store(d.final.Reorder.GapSkipped)
				return
			}
			d.sim.RunUntil(d.clock())
			if !d.dedup.Admit(p.FlowID, p.Seq) {
				// A hedged sibling already claimed this seq. A=0 marks the
				// flow-level dedup verdict (vs 1 for a wire duplicate).
				if tr := d.trace; tr != nil && tr.Sampled(p.FlowID, p.Seq) {
					tr.Emit(obs.WireEvent{Nanos: int64(d.clock()), Kind: obs.WireDedup,
						Path: int32(p.PathID), FlowID: p.FlowID, Seq: p.Seq,
						PathSeq: p.PathSeq})
				}
				continue
			}
			d.rb.Submit(p)
			d.gapSkipped.Store(d.rb.Stats().GapSkipped)
		case reply := <-d.stats:
			reply <- d.snapshot()
		case <-ticker.C:
			d.sim.RunUntil(d.clock())
			d.gapSkipped.Store(d.rb.Stats().GapSkipped)
		}
	}
}

func (d *reorderDriver) snapshot() driverStats {
	return driverStats{Reorder: d.rb.Stats(), DupDrops: d.dedup.dupDrops}
}

// snapshotStats returns driver-owned counters, answered by the driver
// goroutine itself while running (race-free by construction) and from the
// final snapshot after close.
func (d *reorderDriver) snapshotStats() driverStats {
	reply := make(chan driverStats, 1)
	select {
	case d.stats <- reply:
		return <-reply
	case <-d.stopped:
		return d.final
	}
}

// close stops the driver and waits for the final flush.
func (d *reorderDriver) close() {
	close(d.in)
	<-d.stopped
}
