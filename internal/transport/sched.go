package transport

// Sender-side path scheduling. The schedulers mirror the internal/core
// policies on the signals a real wire provides — no lane telemetry, but
// exact in-flight counts from ack accounting — and reuse core's health
// machinery (core.HealthTracker per path) with the same contract the
// simulated policies obey: Quarantined and Probing paths receive no
// ordinary traffic, probing paths take a canary trickle (one in
// CanaryEvery packets), and when NO path is eligible the scheduler falls
// back to ignoring health so traffic keeps flowing and keeps the watchdog
// fed.

// SchedulerName selects the sender's path scheduler.
type SchedulerName string

const (
	// SchedRoundRobin sprays packets across eligible paths per packet —
	// core's RoundRobin on the wire.
	SchedRoundRobin SchedulerName = "rr"
	// SchedLeastInflight picks the eligible path with the fewest
	// unacknowledged frames — core's JSQ with ack-derived depth.
	SchedLeastInflight SchedulerName = "least-inflight"
	// SchedHedge duplicates every packet onto the HedgeK least-loaded
	// eligible paths — core's Redundant policy; the receiver's
	// first-copy-wins dedup keeps whichever copy lands first.
	SchedHedge SchedulerName = "hedge"
)

// scheduler picks path indices for one application packet. Owned by the
// sender's Send goroutine (callers hold the sender lock for health reads).
type scheduler struct {
	name        SchedulerName
	hedgeK      int
	canaryEvery int

	next  int    // round-robin cursor
	count uint64 // packets scheduled (canary clock)
	picks []int  // scratch, reused across calls
	elig  []int  // scratch, reused across calls
}

// pathView is what the scheduler reads per path: health eligibility and
// ack-derived load.
type pathView interface {
	eligible() bool
	probing() bool
	inflight() int
}

// pick returns 1..n distinct path indices for the next packet, plus the
// position in picks (or -1) of a canary copy onto a probing path. Unlike
// core's engine — where a canary IS the packet's only copy — the wire
// scheduler sends the canary alongside the normal pick: the probing path
// gets real sacrificial volume, but a still-dead path costs an extra
// frame, not an end-to-end loss (the receiver's dedup absorbs whichever
// copy is surplus).
func (s *scheduler) pick(paths []*senderPath) (picks []int, canaryIdx int) {
	s.count++
	canaryIdx = -1
	canaryPath := -1
	// Canary trickle: every canaryEvery-th packet feeds a probing path,
	// sacrificial volume proving (or disproving) recovery.
	if s.canaryEvery > 0 && s.count%uint64(s.canaryEvery) == 0 {
		canaryPath = s.nextProbing(paths)
	}

	s.elig = s.elig[:0]
	for i, p := range paths {
		if p.eligible() {
			s.elig = append(s.elig, i)
		}
	}
	cand := s.elig
	if len(cand) == 0 {
		// Mass failure: ignore health rather than stall (and keep the
		// watchdogs fed), exactly like the core policies.
		for i := range paths {
			s.elig = append(s.elig, i)
		}
		cand = s.elig
	}

	s.picks = s.picks[:0]
	switch s.name {
	case SchedRoundRobin:
		s.picks = append(s.picks, cand[s.next%len(cand)])
		s.next++
	case SchedLeastInflight:
		s.picks = append(s.picks, bestByInflight(paths, cand, -1))
	default: // SchedHedge
		k := s.hedgeK
		if k < 2 {
			k = 2
		}
		if k > len(cand) {
			k = len(cand)
		}
		first := bestByInflight(paths, cand, -1)
		s.picks = append(s.picks, first)
		for len(s.picks) < k {
			next := bestByInflight(paths, cand, s.picks...)
			if next < 0 {
				break
			}
			s.picks = append(s.picks, next)
		}
	}
	if canaryPath >= 0 {
		for i, p := range s.picks {
			if p == canaryPath {
				return s.picks, i // fallback mode already routed here
			}
		}
		canaryIdx = len(s.picks)
		s.picks = append(s.picks, canaryPath)
	}
	return s.picks, canaryIdx
}

// nextProbing rotates across probing paths so concurrent probes share the
// canary trickle (mirrors core's nextProbing).
func (s *scheduler) nextProbing(paths []*senderPath) int {
	n := len(paths)
	start := int(s.count) % n
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if paths[i].probing() {
			return i
		}
	}
	return -1
}

// bestByInflight returns the candidate with the fewest in-flight frames
// (ties to the lowest index, keeping runs deterministic), excluding any
// index in skip. Returns -1 when every candidate is excluded.
func bestByInflight(paths []*senderPath, cand []int, skip ...int) int {
	best, bestLoad := -1, 0
	for _, i := range cand {
		excluded := false
		for _, sk := range skip {
			if i == sk {
				excluded = true
				break
			}
		}
		if excluded {
			continue
		}
		if load := paths[i].inflight(); best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}
