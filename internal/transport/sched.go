package transport

import "mpdp/internal/obs"

// Sender-side path scheduling. The schedulers mirror the internal/core
// policies on the signals a real wire provides — no lane telemetry, but
// exact in-flight counts from ack accounting — and reuse core's health
// machinery (core.HealthTracker per path) with the same contract the
// simulated policies obey: Quarantined and Probing paths receive no
// ordinary traffic, probing paths take a canary trickle (one in
// CanaryEvery packets), and when NO path is eligible the scheduler falls
// back to ignoring health so traffic keeps flowing and keeps the watchdog
// fed.

// SchedulerName selects the sender's path scheduler.
type SchedulerName string

const (
	// SchedRoundRobin sprays packets across eligible paths per packet —
	// core's RoundRobin on the wire.
	SchedRoundRobin SchedulerName = "rr"
	// SchedLeastInflight picks the eligible path with the fewest
	// unacknowledged frames — core's JSQ with ack-derived depth.
	SchedLeastInflight SchedulerName = "least-inflight"
	// SchedHedge duplicates every packet onto the HedgeK least-loaded
	// eligible paths — core's Redundant policy; the receiver's
	// first-copy-wins dedup keeps whichever copy lands first.
	SchedHedge SchedulerName = "hedge"
	// SchedDeadline mirrors core's DeadlineAware on the wire: best single
	// path while the packet's deadline looks safe there (judged against the
	// path's ack-derived RTT plus a jitter margin), escalating to a second
	// copy only when the deadline is at risk — and only when the global
	// duplication-bytes budget covers the extra frame.
	SchedDeadline SchedulerName = "deadline"
)

// scheduler picks path indices for one application packet. Owned by the
// sender's Send goroutine (callers hold the sender lock for health reads).
type scheduler struct {
	name        SchedulerName
	hedgeK      int
	canaryEvery int

	// Deadline mode (SchedDeadline only). deadlineNanos is the per-packet
	// wall-clock latency budget; margin multiplies the path's RTT jitter in
	// the risk estimate; budget meters duplicated bytes.
	deadlineNanos int64
	margin        float64
	budget        *wireDupBudget
	dstats        WireDeadlineStats

	next  int    // round-robin cursor
	count uint64 // packets scheduled (canary clock)
	picks []int  // scratch, reused across calls
	elig  []int  // scratch, reused across calls

	// verdict holds the obs.WireSched* bits of the most recent pick, for
	// the sender's wire trace. Reset at the top of every pick.
	verdict int64
}

// WireDeadlineStats snapshots the deadline scheduler's decisions and
// budget accounting (all zero unless SchedDeadline is active).
type WireDeadlineStats struct {
	Safe         uint64 `json:"safe"`    // deadline judged safe on the best path
	AtRisk       uint64 `json:"at_risk"` // deadline judged at risk
	Duplicated   uint64 `json:"duplicated"`
	Denied       uint64 `json:"denied"` // duplication wanted but withheld
	BudgetSpent  uint64 `json:"budget_spent_bytes"`
	BudgetDenied uint64 `json:"budget_denied"`
}

// wireDupBudget is core.DupBudget re-expressed in wall nanoseconds: a
// duplication-bytes token bucket refilled at rate bytes/sec up to burst.
// Guarded by the sender lock like the rest of the scheduler state.
type wireDupBudget struct {
	rate  float64 // bytes per second
	burst float64 // bucket capacity in bytes

	tokens    float64
	lastNanos int64
	started   bool

	spent  uint64
	denied uint64
}

func newWireDupBudget(bytesPerSec, burst float64) *wireDupBudget {
	if !(bytesPerSec > 0) {
		bytesPerSec = 0
	}
	if !(burst > 0) {
		burst = 0
	}
	if burst == 0 && bytesPerSec > 0 {
		burst = bytesPerSec / 100 // 10 ms worth, mirroring core.NewDupBudget
		if burst < 1 {
			burst = 1
		}
	}
	return &wireDupBudget{rate: bytesPerSec, burst: burst}
}

// trySpend withdraws size bytes if available at wall time nowNanos.
// Tokens never go negative: a spend either fits or is denied.
func (b *wireDupBudget) trySpend(nowNanos int64, size int) bool {
	if b.rate == 0 && b.burst == 0 {
		b.denied++
		return false
	}
	if !b.started {
		b.started = true
		b.lastNanos = nowNanos
		b.tokens = b.burst
	} else if nowNanos > b.lastNanos {
		b.tokens += b.rate * float64(nowNanos-b.lastNanos) / 1e9
		b.lastNanos = nowNanos
	}
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if size < 0 {
		size = 0
	}
	if float64(size) > b.tokens {
		b.denied++
		return false
	}
	b.tokens -= float64(size)
	b.spent += uint64(size)
	return true
}

// pathView is what the scheduler reads per path: health eligibility and
// ack-derived load.
type pathView interface {
	eligible() bool
	probing() bool
	inflight() int
}

// pick returns 1..n distinct path indices for the next packet, plus the
// position in picks (or -1) of a canary copy onto a probing path. Unlike
// core's engine — where a canary IS the packet's only copy — the wire
// scheduler sends the canary alongside the normal pick: the probing path
// gets real sacrificial volume, but a still-dead path costs an extra
// frame, not an end-to-end loss (the receiver's dedup absorbs whichever
// copy is surplus). nowNanos and size feed only the deadline scheduler's
// budget accounting; the other modes ignore them.
func (s *scheduler) pick(paths []*senderPath, nowNanos int64, size int) (picks []int, canaryIdx int) {
	s.count++
	s.verdict = 0
	canaryIdx = -1
	canaryPath := -1
	// Canary trickle: every canaryEvery-th packet feeds a probing path,
	// sacrificial volume proving (or disproving) recovery.
	if s.canaryEvery > 0 && s.count%uint64(s.canaryEvery) == 0 {
		canaryPath = s.nextProbing(paths)
	}

	s.elig = s.elig[:0]
	for i, p := range paths {
		if p.eligible() {
			s.elig = append(s.elig, i)
		}
	}
	cand := s.elig
	if len(cand) == 0 {
		// Mass failure: ignore health rather than stall (and keep the
		// watchdogs fed), exactly like the core policies.
		s.verdict |= obs.WireSchedFallback
		for i := range paths {
			s.elig = append(s.elig, i)
		}
		cand = s.elig
	}

	s.picks = s.picks[:0]
	switch s.name {
	case SchedRoundRobin:
		s.picks = append(s.picks, cand[s.next%len(cand)])
		s.next++
	case SchedLeastInflight:
		s.picks = append(s.picks, bestByInflight(paths, cand, -1))
	case SchedDeadline:
		// Best single path by RTT-plus-jitter estimate; duplicate onto the
		// runner-up only when even the best estimate threatens the deadline
		// and the byte budget covers the extra frame.
		first := s.bestByEstimate(paths, cand, -1)
		s.picks = append(s.picks, first)
		est := pathEstimate(paths[first], s.margin)
		switch {
		case s.deadlineNanos <= 0 || est <= s.deadlineNanos:
			// est==0 means no RTT sample yet: optimistic until acks teach us.
			s.dstats.Safe++
		default:
			s.dstats.AtRisk++
			s.verdict |= obs.WireSchedAtRisk
			second := s.bestByEstimate(paths, cand, first)
			if second < 0 {
				s.dstats.Denied++
				s.verdict |= obs.WireSchedDenied
			} else if s.budget == nil || !s.budget.trySpend(nowNanos, size) {
				s.dstats.Denied++
				s.verdict |= obs.WireSchedDenied
			} else {
				s.dstats.Duplicated++
				s.verdict |= obs.WireSchedDup
				s.picks = append(s.picks, second)
			}
		}
	default: // SchedHedge
		k := s.hedgeK
		if k < 2 {
			k = 2
		}
		if k > len(cand) {
			k = len(cand)
		}
		first := bestByInflight(paths, cand, -1)
		s.picks = append(s.picks, first)
		for len(s.picks) < k {
			next := bestByInflight(paths, cand, s.picks...)
			if next < 0 {
				break
			}
			s.picks = append(s.picks, next)
		}
	}
	if canaryPath >= 0 {
		s.verdict |= obs.WireSchedCanary
		for i, p := range s.picks {
			if p == canaryPath {
				return s.picks, i // fallback mode already routed here
			}
		}
		canaryIdx = len(s.picks)
		s.picks = append(s.picks, canaryPath)
	}
	return s.picks, canaryIdx
}

// nextProbing rotates across probing paths so concurrent probes share the
// canary trickle (mirrors core's nextProbing).
func (s *scheduler) nextProbing(paths []*senderPath) int {
	n := len(paths)
	start := int(s.count) % n
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if paths[i].probing() {
			return i
		}
	}
	return -1
}

// bestByEstimate returns the candidate with the lowest RTT-plus-jitter
// estimate, excluding skip. Ties break by in-flight count then lowest
// index; unsampled paths (estimate 0) win outright, so a fresh path gets
// traffic — and therefore RTT samples — immediately. Returns -1 when every
// candidate is excluded.
func (s *scheduler) bestByEstimate(paths []*senderPath, cand []int, skip int) int {
	best := -1
	var bestEst int64
	var bestLoad int
	for _, i := range cand {
		if i == skip {
			continue
		}
		est := pathEstimate(paths[i], s.margin)
		load := paths[i].inflight()
		if best == -1 || est < bestEst || (est == bestEst && load < bestLoad) {
			best, bestEst, bestLoad = i, est, load
		}
	}
	return best
}

// pathEstimate is the wire analogue of core's fluctuation estimate: the
// path's smoothed RTT plus margin times its smoothed RTT deviation,
// clamped finite. 0 until the first ack delivers an RTT sample.
func pathEstimate(p *senderPath, margin float64) int64 {
	if p.rttNanos == 0 {
		return 0
	}
	est := float64(p.rttNanos) + margin*float64(p.rttJitter)
	if !(est > 0) { // NaN or non-positive
		return 0
	}
	const maxEst = int64(1) << 60
	if est > float64(maxEst) {
		return maxEst
	}
	return int64(est)
}

// bestByInflight returns the candidate with the fewest in-flight frames
// (ties to the lowest index, keeping runs deterministic), excluding any
// index in skip. Returns -1 when every candidate is excluded.
func bestByInflight(paths []*senderPath, cand []int, skip ...int) int {
	best, bestLoad := -1, 0
	for _, i := range cand {
		excluded := false
		for _, sk := range skip {
			if i == sk {
				excluded = true
				break
			}
		}
		if excluded {
			continue
		}
		if load := paths[i].inflight(); best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}
