package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/live"
	"mpdp/internal/obs"
	"mpdp/internal/sim"
)

// PathConfig names one wire path: a distinct local/remote UDP socket pair.
type PathConfig struct {
	// LocalAddr is the local bind address ("" lets the kernel pick an
	// ephemeral port). Distinct local addresses are what make the paths
	// independently routable (and independently impairable).
	LocalAddr string
	// RemoteAddr is the receiver endpoint for this path.
	RemoteAddr string
}

// SenderConfig configures a multipath Sender.
type SenderConfig struct {
	// Paths are the wire paths, at least one.
	Paths []PathConfig
	// Scheduler picks paths per packet (default SchedHedge).
	Scheduler SchedulerName
	// HedgeK is how many copies SchedHedge sends (default 2).
	HedgeK int
	// Deadline is the per-packet latency budget SchedDeadline protects
	// (default 2 ms). Ignored by the other schedulers.
	Deadline time.Duration
	// DeadlineMargin multiplies the path's RTT jitter in SchedDeadline's
	// risk estimate (default 3, clamped to [0, 64]).
	DeadlineMargin float64
	// DupBudgetBytesPerSec and DupBudgetBurst configure SchedDeadline's
	// global duplication-bytes token bucket. Both zero means duplication is
	// disabled entirely: the scheduler degrades to its best-single-path
	// choice. A zero burst with a positive rate defaults to 10 ms of rate.
	DupBudgetBytesPerSec float64
	DupBudgetBurst       float64
	// Health tunes the per-path state machine; times are wall nanoseconds.
	// The zero value takes core's defaults, which suit a loopback wire;
	// real networks want SuspectTimeout/QuarantineBackoff well above RTT.
	Health core.HealthConfig
	// Impairer, when non-nil, intercepts every outgoing frame (fault
	// injection for tests and experiments).
	Impairer Impairer
	// MaintainEvery runs the health sweep once per this many sends
	// (default 16, mirroring core).
	MaintainEvery int
	// Spans, when non-nil, records encode and socket-write stage latency.
	Spans *Spans
	// OnEcho is invoked from a path's reader goroutine for each echoed
	// frame, with the measured round-trip time.
	OnEcho func(path int, h Header, rtt time.Duration)
	// Verifier, when non-nil, is told about every application packet
	// before its first wire copy is written (so a delivery can never race
	// ahead of its send record).
	Verifier *Verifier
	// Trace, when non-nil, records sampled per-frame lifecycle events
	// (enqueue, scheduler verdict, per-copy tx, ack receipt) into a wire
	// flight recorder for cross-endpoint tail attribution. Nil disables
	// every capture site: an untraced sender behaves byte-identically.
	Trace *obs.WireRecorder
}

// senderPath is one wire path's socket plus its ack-accounting and health
// state. pathSeq and the scratch buffer belong to the Send goroutine; the
// accounting fields and tracker are guarded by Sender.mu (shared between
// Send and this path's ack reader).
type senderPath struct {
	id   uint16
	conn *net.UDPConn

	health  *core.HealthTracker
	pathSeq uint64 // last wire seq assigned on this path

	// Cumulative ack state: the receiver reports (highest pathSeq seen,
	// total frames received); deltas against the previous report yield the
	// newly-delivered and newly-lost counts fed to the health machine.
	ackHigh uint64
	ackRecv uint64

	sent      uint64
	acked     uint64
	lost      uint64
	refused   uint64
	rttNanos  int64 // EWMA, 0 until the first ack carries an RTT echo
	rttJitter int64 // EWMA of |rtt - smoothed rtt|; the wire's fluctuation signal
	lastEcho  int64 // newest SendNanos echo folded into the RTT EWMA

	scratch []byte
}

func (p *senderPath) eligible() bool { return p.health.Eligible() }
func (p *senderPath) probing() bool  { return p.health.State() == core.HealthProbing }
func (p *senderPath) inflight() int  { return p.health.InFlight() }

// Sender sprays one logical flow stream across N UDP paths. Send is
// single-goroutine (like live.Ingress): callers serialize their own
// submission; the per-path ack readers run concurrently and share only the
// mutex-guarded accounting.
type Sender struct {
	cfg   SenderConfig
	paths []*senderPath
	sched scheduler

	mu       sync.Mutex
	flowSeq  map[uint64]uint64 // next per-flow seq (the reorder key)
	packets  uint64
	frames   uint64
	canaries uint64
	dupBytes uint64 // payload bytes of extra wire copies (hedge + deadline + canary)
	sinceMnt int

	wg       sync.WaitGroup
	delayers sync.WaitGroup
	closed   chan struct{}
}

// Dial opens every path's socket and starts the ack readers.
func Dial(cfg SenderConfig) (*Sender, error) {
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("transport: no paths configured")
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedHedge
	}
	if cfg.HedgeK == 0 {
		cfg.HedgeK = 2
	}
	if cfg.MaintainEvery == 0 {
		cfg.MaintainEvery = 16
	}
	s := &Sender{
		cfg: cfg,
		sched: scheduler{
			name:        cfg.Scheduler,
			hedgeK:      cfg.HedgeK,
			canaryEvery: canaryEvery(cfg.Health),
		},
		flowSeq: make(map[uint64]uint64),
		closed:  make(chan struct{}),
	}
	if cfg.Scheduler == SchedDeadline {
		deadline := cfg.Deadline
		if deadline == 0 {
			deadline = 2 * time.Millisecond
		}
		margin := cfg.DeadlineMargin
		if !(margin > 0) { // zero, negative, or NaN take the default
			margin = 3
		}
		if margin > 64 {
			margin = 64
		}
		s.sched.deadlineNanos = deadline.Nanoseconds()
		s.sched.margin = margin
		if cfg.DupBudgetBytesPerSec > 0 || cfg.DupBudgetBurst > 0 {
			s.sched.budget = newWireDupBudget(cfg.DupBudgetBytesPerSec, cfg.DupBudgetBurst)
		}
	}
	for i, pc := range cfg.Paths {
		raddr, err := net.ResolveUDPAddr("udp", pc.RemoteAddr)
		if err != nil {
			s.closeConns()
			return nil, fmt.Errorf("transport: path %d remote %q: %w", i, pc.RemoteAddr, err)
		}
		var laddr *net.UDPAddr
		if pc.LocalAddr != "" {
			laddr, err = net.ResolveUDPAddr("udp", pc.LocalAddr)
			if err != nil {
				s.closeConns()
				return nil, fmt.Errorf("transport: path %d local %q: %w", i, pc.LocalAddr, err)
			}
		}
		conn, err := net.DialUDP("udp", laddr, raddr)
		if err != nil {
			s.closeConns()
			return nil, fmt.Errorf("transport: path %d dial: %w", i, err)
		}
		conn.SetWriteBuffer(1 << 20) //lint:allow erroreat best-effort socket buffer sizing
		p := &senderPath{
			id:      uint16(i),
			conn:    conn,
			health:  core.NewHealthTracker(cfg.Health),
			scratch: make([]byte, 0, HeaderLen+MaxPayload),
		}
		s.paths = append(s.paths, p)
	}
	for _, p := range s.paths {
		s.wg.Add(1)
		go s.readAcks(p)
	}
	return s, nil
}

func canaryEvery(cfg core.HealthConfig) int {
	if cfg.Disable {
		return 0
	}
	if cfg.CanaryEvery != 0 {
		return cfg.CanaryEvery
	}
	return 16
}

func (s *Sender) closeConns() {
	for _, p := range s.paths {
		if p.conn != nil {
			p.conn.Close() //lint:allow erroreat best-effort teardown of a UDP socket
		}
	}
}

// Send schedules payload onto one or more paths (hedging may emit several
// wire copies of the same flow seq) and returns the assigned per-flow
// sequence number. Not safe for concurrent use — callers own a single
// submission goroutine.
func (s *Sender) Send(flowID uint64, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, ErrTooLarge
	}
	now := nowNanos()

	s.mu.Lock()
	s.sinceMnt++
	if s.sinceMnt >= s.cfg.MaintainEvery {
		s.sinceMnt = 0
		for _, p := range s.paths {
			p.health.Maintain(sim.Time(now))
		}
	}
	picks, canaryIdx := s.sched.pick(s.paths, now, len(payload))
	verdict := s.sched.verdict
	seq := s.flowSeq[flowID]
	s.flowSeq[flowID] = seq + 1
	s.packets++
	if canaryIdx >= 0 {
		s.canaries++
	}
	// Assign wire seqs and charge health before releasing the lock, so an
	// ack racing the socket write can never observe inflight underflow.
	type plan struct {
		path    *senderPath
		pathSeq uint64
		flags   uint8
	}
	plans := make([]plan, 0, 4)
	for idx, i := range picks {
		p := s.paths[i]
		p.pathSeq++
		p.sent++
		s.frames++
		p.health.ObserveSent(sim.Time(now), 1)
		var flags uint8
		if idx > 0 {
			flags |= FlagDup
			// Extra wire copies — hedged, deadline escalations, canary
			// mirrors — bill their payload to the duplication-cost axis.
			s.dupBytes += uint64(len(payload))
		}
		if idx == canaryIdx {
			flags |= FlagProbe
		}
		plans = append(plans, plan{p, p.pathSeq, flags})
	}
	s.mu.Unlock()

	if v := s.cfg.Verifier; v != nil {
		v.NoteSent(flowID, seq)
	}

	// The trace's enqueue timestamp IS the SendNanos stamped into every
	// copy's header, so the receiver can reconstruct it from the echo.
	tr := s.cfg.Trace
	sampled := tr != nil && tr.Sampled(flowID, seq)
	if sampled {
		tr.Emit(obs.WireEvent{Nanos: now, Kind: obs.WireEnqueue, Path: -1,
			FlowID: flowID, Seq: seq, A: int64(len(payload))})
		tr.Emit(obs.WireEvent{Nanos: now, Kind: obs.WireSched,
			Path: int32(plans[0].path.id), FlowID: flowID, Seq: seq,
			A: int64(len(plans)), B: verdict})
	}

	var firstErr error
	for _, pl := range plans {
		h := Header{
			Flags:     pl.flags,
			PathID:    pl.path.id,
			FlowID:    flowID,
			Seq:       seq,
			PathSeq:   pl.pathSeq,
			SendNanos: now,
		}
		if err := s.writeFrame(pl.path, h, payload, sampled); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return seq, firstErr
}

// writeFrame encodes and transmits one wire frame, applying the impairer
// verdict. Socket writes happen outside the sender lock. sampled marks
// frames whose (flow, seq) is in the wire trace's sample: each copy that
// actually reaches the socket emits a tx event stamped post-write.
func (s *Sender) writeFrame(p *senderPath, h Header, payload []byte, sampled bool) error {
	t0 := nowNanos()
	buf, err := AppendFrame(p.scratch[:0], &h, payload)
	if err != nil {
		return err
	}
	p.scratch = buf[:0]
	if sp := s.cfg.Spans; sp != nil {
		sp.Encode.Record(nowNanos() - t0)
	}

	writes := 1
	if im := s.cfg.Impairer; im != nil {
		v := im.Impair(int(h.PathID), &h)
		if v.Drop {
			return nil // a silent wire loss: the receiver sees a path-seq gap
		}
		if v.Duplicate {
			writes = 2
		}
		if v.Delay > 0 {
			// Delayed frames need their own copy: scratch is reused by the
			// next Send before the timer fires.
			own := make([]byte, len(buf))
			copy(own, buf)
			s.delayers.Add(1)
			time.AfterFunc(v.Delay, func() { //lint:allow determinism impairer-injected wire delay
				defer s.delayers.Done()
				select {
				case <-s.closed:
					return
				default:
				}
				for i := 0; i < writes; i++ {
					s.write(p, own) //lint:allow erroreat write already fed the failure to health; a delayed frame has no caller to tell
				}
				s.traceTx(h, sampled)
			})
			return nil
		}
	}
	var werr error
	for i := 0; i < writes; i++ {
		if err := s.write(p, buf); err != nil && werr == nil {
			werr = err
		}
	}
	if werr == nil {
		s.traceTx(h, sampled)
	}
	return werr
}

// traceTx emits the copy's tx event and records the sender_queue stage
// (accept → this copy's socket write, all sender clock).
func (s *Sender) traceTx(h Header, sampled bool) {
	if !sampled {
		return
	}
	txNow := nowNanos()
	s.cfg.Trace.Emit(obs.WireEvent{Nanos: txNow, Kind: obs.WireTx,
		Path: int32(h.PathID), FlowID: h.FlowID, Seq: h.Seq, PathSeq: h.PathSeq,
		A: int64(h.Flags)})
	if sp := s.cfg.Spans; sp != nil && sp.SenderQueue != nil {
		sp.SenderQueue.Record(txNow - h.SendNanos)
	}
}

// write performs the socket write and feeds the result to health.
func (s *Sender) write(p *senderPath, frame []byte) error {
	t0 := nowNanos()
	_, err := p.conn.Write(frame)
	if sp := s.cfg.Spans; sp != nil {
		sp.SocketWrite.Record(nowNanos() - t0)
	}
	if err != nil {
		s.mu.Lock()
		p.refused++
		p.health.ObserveSendRefused(sim.Time(nowNanos()))
		s.mu.Unlock()
		return err
	}
	return nil
}

// readAcks consumes ack and echo frames from one path's socket until it is
// closed.
func (s *Sender) readAcks(p *senderPath) {
	defer s.wg.Done()
	buf := make([]byte, HeaderLen+MaxPayload)
	for {
		n, err := p.conn.Read(buf)
		if err != nil {
			return // socket closed (or ICMP-refused): Close tears us down
		}
		h, _, err := DecodeFrame(buf[:n])
		if err != nil {
			continue // garbage on the wire is not our ack
		}
		switch {
		case h.IsAck():
			s.handleAck(p, h)
		case h.Flags&FlagEcho != 0:
			if fn := s.cfg.OnEcho; fn != nil {
				fn(int(p.id), h, time.Duration(nowNanos()-h.SendNanos))
			}
		}
	}
}

// handleAck folds one cumulative ack report into the path's accounting and
// health. Ack frames carry: PathSeq = highest wire seq the receiver has
// seen on this path, Seq = total frames it has received on this path, and
// SendNanos echoing the newest data frame's send timestamp (RTT sample).
func (s *Sender) handleAck(p *senderPath, h Header) {
	now := nowNanos()
	s.mu.Lock()
	defer s.mu.Unlock()
	high, recv := h.PathSeq, h.Seq
	if high < p.ackHigh || recv < p.ackRecv {
		return // reordered/duplicated ack: older than what we've processed
	}
	newDelivered := int(recv - p.ackRecv)
	// The gap (high - recv) is how many frames are currently missing below
	// the high-water mark; its growth since the last report is the newly
	// conclusive loss. Shrinkage (a straggler filled a hole) clamps to 0 —
	// the earlier loss verdict already charged the health machine.
	newLost := int((high - recv)) - int(p.ackHigh-p.ackRecv)
	if newLost < 0 {
		newLost = 0
	}
	p.ackHigh, p.ackRecv = high, recv
	p.acked += uint64(newDelivered)
	p.lost += uint64(newLost)
	// RTT sampling keys on the echo's freshness, not the ack's: a
	// duplicated ack, or a sweep ack repeating the newest echo, would pass
	// the cumulative guard above yet re-sample the same send timestamp
	// against a later `now` — inflating the EWMA with phantom latency.
	// Only a strictly newer echo yields a sample; clock-skewed echoes from
	// the future (rtt ≤ 0) are rejected rather than folded in.
	var rttSample int64
	if h.SendNanos > p.lastEcho {
		p.lastEcho = h.SendNanos
		rtt := now - h.SendNanos
		if rtt > 0 {
			rttSample = rtt
			if p.rttNanos == 0 {
				p.rttNanos = rtt
			} else {
				dev := rtt - p.rttNanos
				if dev < 0 {
					dev = -dev
				}
				p.rttNanos += (rtt - p.rttNanos) / 8
				p.rttJitter += (dev - p.rttJitter) / 8
			}
		}
	}
	p.health.ObserveAck(sim.Time(now), newDelivered, newLost)
	p.health.Maintain(sim.Time(now))
	// Ack events are never flow-sampled: they are the merge layer's
	// clock-offset signal. Lock order sender.mu → recorder.mu is safe (the
	// recorder never takes transport locks).
	if tr := s.cfg.Trace; tr != nil {
		tr.Emit(obs.WireEvent{Nanos: now, Kind: obs.WireAckRx,
			Path: int32(p.id), A: rttSample, B: int64(newLost)})
	}
}

// PathStats is one path's cumulative sender-side accounting.
type PathStats struct {
	Path        int           `json:"path"`
	Remote      string        `json:"remote"`
	Sent        uint64        `json:"sent"`
	Acked       uint64        `json:"acked"`
	Lost        uint64        `json:"lost"`
	Refused     uint64        `json:"refused"`
	InFlight    int           `json:"in_flight"`
	RTT         time.Duration `json:"rtt_ns"`
	RTTJitter   time.Duration `json:"rtt_jitter_ns"`
	Health      string        `json:"health"`
	Quarantines int           `json:"quarantines"`
}

// SenderStats aggregates the sender's counters.
type SenderStats struct {
	Packets  uint64 `json:"packets"`   // application packets accepted
	Frames   uint64 `json:"frames"`    // wire frames scheduled (hedge copies included)
	Canaries uint64 `json:"canaries"`  // probe-trickle packets
	DupBytes uint64 `json:"dup_bytes"` // payload bytes of extra wire copies
	// Deadline is non-nil when SchedDeadline is active.
	Deadline *WireDeadlineStats `json:"deadline,omitempty"`
	Paths    []PathStats        `json:"paths"`
}

// Stats snapshots the sender's accounting.
func (s *Sender) Stats() SenderStats {
	// Resolve the path addresses before taking s.mu: RemoteAddr goes
	// through the net package (kernel-bound) and must not extend the send
	// path's lock hold time. s.paths is fixed after dialing.
	remotes := make([]string, len(s.paths))
	for i, p := range s.paths {
		remotes[i] = p.conn.RemoteAddr().String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SenderStats{Packets: s.packets, Frames: s.frames, Canaries: s.canaries, DupBytes: s.dupBytes}
	if s.sched.name == SchedDeadline {
		d := s.sched.dstats
		if b := s.sched.budget; b != nil {
			d.BudgetSpent = b.spent
			d.BudgetDenied = b.denied
		}
		st.Deadline = &d
	}
	for i, p := range s.paths {
		st.Paths = append(st.Paths, PathStats{
			Path:        int(p.id),
			Remote:      remotes[i],
			Sent:        p.sent,
			Acked:       p.acked,
			Lost:        p.lost,
			Refused:     p.refused,
			InFlight:    p.health.InFlight(),
			RTT:         time.Duration(p.rttNanos),
			RTTJitter:   time.Duration(p.rttJitter),
			Health:      p.health.State().String(),
			Quarantines: p.health.Quarantines(),
		})
	}
	return st
}

// PathHealthSnap is one path's health reading at an instant — the tail
// sentinel's path signal and the incident bundle's timeline entry.
type PathHealthSnap struct {
	Path        int    `json:"path"`
	State       string `json:"state"`
	Quarantines int    `json:"quarantines"`
}

// HealthSnapshot reads every path's health state. Cheap enough to call
// once per sentinel tick: one lock hold, no socket touches.
func (s *Sender) HealthSnapshot() []PathHealthSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PathHealthSnap, len(s.paths))
	for i, p := range s.paths {
		out[i] = PathHealthSnap{
			Path:        int(p.id),
			State:       p.health.State().String(),
			Quarantines: p.health.Quarantines(),
		}
	}
	return out
}

// SetTraceSampling retunes the attached wire recorder's sampling rate
// (no-op returning 0 when untraced) — the sender half of the sentinel's
// capture ramp.
func (s *Sender) SetTraceSampling(every int) int {
	if s.cfg.Trace == nil {
		return 0
	}
	return s.cfg.Trace.SetSampleEvery(every)
}

// RegisterMetrics exposes the sender's duplication and deadline counters
// on a live registry: mpdp_dup_bytes_total always, the mpdp_deadline_* /
// mpdp_dup_budget_* family when SchedDeadline is active. Snapshot
// closures take the sender lock, matching every other reader.
func (s *Sender) RegisterMetrics(reg *live.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mpdp_dup_bytes_total", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.dupBytes
	})
	if s.sched.name != SchedDeadline {
		return
	}
	dstat := func(f func(WireDeadlineStats) uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			d := s.sched.dstats
			if b := s.sched.budget; b != nil {
				d.BudgetSpent = b.spent
				d.BudgetDenied = b.denied
			}
			return f(d)
		}
	}
	reg.CounterFunc("mpdp_deadline_safe_total", dstat(func(d WireDeadlineStats) uint64 { return d.Safe }))
	reg.CounterFunc("mpdp_deadline_at_risk_total", dstat(func(d WireDeadlineStats) uint64 { return d.AtRisk }))
	reg.CounterFunc("mpdp_deadline_dups_total", dstat(func(d WireDeadlineStats) uint64 { return d.Duplicated }))
	reg.CounterFunc("mpdp_deadline_denied_total", dstat(func(d WireDeadlineStats) uint64 { return d.Denied }))
	reg.CounterFunc("mpdp_dup_budget_spent_bytes_total", dstat(func(d WireDeadlineStats) uint64 { return d.BudgetSpent }))
	reg.CounterFunc("mpdp_dup_budget_denied_total", dstat(func(d WireDeadlineStats) uint64 { return d.BudgetDenied }))
}

// Close shuts every path socket and waits for the ack readers (and any
// impairer-delayed writes) to finish.
func (s *Sender) Close() error {
	close(s.closed)
	s.delayers.Wait()
	s.closeConns()
	s.wg.Wait()
	return nil
}
