package transport

import (
	"fmt"

	"mpdp/internal/live"
)

// Spans bundles the wire path's per-stage latency histograms, recorded
// into the live metrics plane (sharded lock-free live.Histogram, the same
// recorder the in-process engine uses). Stages, in pipeline order:
//
//	encode        header+payload serialization into the path scratch buffer
//	socket_write  the sendto(2) call
//	socket_read   the recvfrom(2) call (includes waiting for the frame:
//	              under load this is inter-arrival time, idle it is idle)
//	reorder       in-order release delay after arrival
//	deliver       the application's deliver callback
//	e2e           send timestamp → in-order delivery (the wire-path
//	              analogue of the paper's last-mile latency; cross-host it
//	              inherits the two clocks' offset)
//
// A nil *Spans disables recording at every site.
type Spans struct {
	Encode      *live.Histogram
	SocketWrite *live.Histogram
	SocketRead  *live.Histogram
	Reorder     *live.Histogram
	Deliver     *live.Histogram
	E2E         *live.Histogram
}

// NewSpans allocates the stage histograms and, when reg is non-nil,
// registers them as the labeled family mpdp_wire_stage_latency_ns{stage=...}
// (mirroring the live engine's mpdp_stage_latency_ns family).
func NewSpans(reg *live.Registry) *Spans {
	s := &Spans{
		Encode:      live.NewHistogram(),
		SocketWrite: live.NewHistogram(),
		SocketRead:  live.NewHistogram(),
		Reorder:     live.NewHistogram(),
		Deliver:     live.NewHistogram(),
		E2E:         live.NewHistogram(),
	}
	if reg != nil {
		for _, st := range s.stages() {
			reg.RegisterHistogram(fmt.Sprintf("mpdp_wire_stage_latency_ns{stage=%q}", st.name), st.h)
		}
	}
	return s
}

type spanStage struct {
	name string
	h    *live.Histogram
}

func (s *Spans) stages() []spanStage {
	return []spanStage{
		{"encode", s.Encode},
		{"socket_write", s.SocketWrite},
		{"socket_read", s.SocketRead},
		{"reorder", s.Reorder},
		{"deliver", s.Deliver},
		{"e2e", s.E2E},
	}
}

// StageSnapshot returns every stage's summary in pipeline order, in the
// same shape the live engine reports.
func (s *Spans) StageSnapshot() []live.StageSpan {
	if s == nil {
		return nil
	}
	var out []live.StageSpan
	for _, st := range s.stages() {
		snap := st.h.Snapshot()
		out = append(out, live.StageSpan{Stage: st.name, Latency: snap.Summary()})
	}
	return out
}
