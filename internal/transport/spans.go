package transport

import (
	"fmt"

	"mpdp/internal/live"
)

// Spans bundles the wire path's per-stage latency histograms, recorded
// into the live metrics plane (sharded lock-free live.Histogram, the same
// recorder the in-process engine uses). Stages, in pipeline order:
//
//	encode        header+payload serialization into the path scratch buffer
//	socket_write  the sendto(2) call
//	socket_read   the recvfrom(2) call (includes waiting for the frame:
//	              under load this is inter-arrival time, idle it is idle)
//	reorder       in-order release delay after arrival
//	deliver       the application's deliver callback
//	e2e           send timestamp → in-order delivery (the wire-path
//	              analogue of the paper's last-mile latency; cross-host it
//	              inherits the two clocks' offset)
//
// A nil *Spans disables recording at every site.
//
// Two further stages exist only when wire tracing is enabled (see
// EnableWireStages) and stay entirely absent otherwise, so a traced and
// an untraced run differ by exactly the stages the trace adds:
//
//	sender_queue  packet accept → the admitted copy's socket write
//	flight        send timestamp → frame arrival (cross-clock: inherits
//	              the two endpoints' offset; the merge layer corrects it)
type Spans struct {
	Encode      *live.Histogram
	SocketWrite *live.Histogram
	SocketRead  *live.Histogram
	Reorder     *live.Histogram
	Deliver     *live.Histogram
	E2E         *live.Histogram

	// SenderQueue and Flight are nil unless EnableWireStages was called;
	// every recording site nil-checks them individually.
	SenderQueue *live.Histogram
	Flight      *live.Histogram
}

// NewSpans allocates the stage histograms and, when reg is non-nil,
// registers them as the labeled family mpdp_wire_stage_latency_ns{stage=...}
// (mirroring the live engine's mpdp_stage_latency_ns family).
func NewSpans(reg *live.Registry) *Spans {
	s := &Spans{
		Encode:      live.NewHistogram(),
		SocketWrite: live.NewHistogram(),
		SocketRead:  live.NewHistogram(),
		Reorder:     live.NewHistogram(),
		Deliver:     live.NewHistogram(),
		E2E:         live.NewHistogram(),
	}
	if reg != nil {
		for _, st := range s.stages() {
			reg.RegisterHistogram(fmt.Sprintf("mpdp_wire_stage_latency_ns{stage=%q}", st.name), st.h)
		}
	}
	return s
}

// EnableWireStages allocates the wire-trace-only stages (sender_queue,
// flight) and, when reg is non-nil, registers them on the same
// mpdp_wire_stage_latency_ns family. Call before the Spans are shared
// with a Sender/Receiver; without this call the stages do not exist and
// span output is byte-identical to an untraced run.
func (s *Spans) EnableWireStages(reg *live.Registry) {
	s.SenderQueue = live.NewHistogram()
	s.Flight = live.NewHistogram()
	if reg != nil {
		reg.RegisterHistogram(`mpdp_wire_stage_latency_ns{stage="sender_queue"}`, s.SenderQueue)
		reg.RegisterHistogram(`mpdp_wire_stage_latency_ns{stage="flight"}`, s.Flight)
	}
}

type spanStage struct {
	name string
	h    *live.Histogram
}

func (s *Spans) stages() []spanStage {
	out := []spanStage{
		{"encode", s.Encode},
		{"socket_write", s.SocketWrite},
	}
	if s.SenderQueue != nil {
		out = append(out, spanStage{"sender_queue", s.SenderQueue})
	}
	out = append(out,
		spanStage{"socket_read", s.SocketRead},
	)
	if s.Flight != nil {
		out = append(out, spanStage{"flight", s.Flight})
	}
	return append(out,
		spanStage{"reorder", s.Reorder},
		spanStage{"deliver", s.Deliver},
		spanStage{"e2e", s.E2E},
	)
}

// StageSnapshot returns every stage's summary in pipeline order, in the
// same shape the live engine reports.
func (s *Spans) StageSnapshot() []live.StageSpan {
	if s == nil {
		return nil
	}
	var out []live.StageSpan
	for _, st := range s.stages() {
		snap := st.h.Snapshot()
		out = append(out, live.StageSpan{Stage: st.name, Latency: snap.Summary()})
	}
	return out
}
