package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// wireHealth is a HealthConfig scaled to loopback RTTs: tolerant enough
// that scheduler jitter never quarantines a healthy path, fast enough that
// tests observing real flaps finish quickly.
func wireHealth() core.HealthConfig {
	return core.HealthConfig{
		SuspectTimeout:    sim.Duration(200 * time.Millisecond),
		QuarantineBackoff: sim.Duration(50 * time.Millisecond),
		ProbeSuccesses:    4,
		DropWindowMin:     64,
	}
}

func TestLoopbackHedgedInOrder(t *testing.T) {
	rep, err := RunLoopback(LoopbackConfig{
		Paths:     2,
		Scheduler: SchedHedge,
		Flows:     4,
		Payload:   128,
		Packets:   5000,
		Health:    wireHealth(),
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v\nall: %v", err, rep.Violations)
	}
	if rep.Delivered != rep.Packets {
		t.Fatalf("delivered %d of %d on a clean loopback wire", rep.Delivered, rep.Packets)
	}
	// Hedging must have used both paths and the dedup absorbed the copies.
	if rep.Frames < 2*rep.Packets {
		t.Fatalf("hedge sent %d frames for %d packets, want 2x", rep.Frames, rep.Packets)
	}
	for _, p := range rep.Sender.Paths {
		if p.Sent == 0 {
			t.Fatalf("path %d idle under hedged duplication: %+v", p.Path, rep.Sender.Paths)
		}
	}
	if rep.DupDrops == 0 {
		t.Fatalf("hedged run absorbed no duplicate copies (dedup bypassed?)")
	}
}

func TestLoopbackRoundRobinAndLeastInflight(t *testing.T) {
	for _, sched := range []SchedulerName{SchedRoundRobin, SchedLeastInflight} {
		rep, err := RunLoopback(LoopbackConfig{
			Paths:     3,
			Scheduler: sched,
			Flows:     2,
			Packets:   2000,
			Health:    wireHealth(),
		})
		if err != nil {
			t.Fatalf("%s: RunLoopback: %v", sched, err)
		}
		if err := rep.Verify(); err != nil {
			t.Fatalf("%s: invariants: %v", sched, err)
		}
		if rep.Delivered != rep.Packets {
			t.Fatalf("%s: delivered %d of %d", sched, rep.Delivered, rep.Packets)
		}
		if rep.Frames != rep.Packets {
			t.Fatalf("%s: single-copy scheduler sent %d frames for %d packets", sched, rep.Frames, rep.Packets)
		}
	}
}

// Wire-level duplication (same frame twice on one path) must be absorbed by
// the per-path wire dedup without inflating delivery or ack counts.
func TestLoopbackWireDuplication(t *testing.T) {
	rep, err := RunLoopback(LoopbackConfig{
		Paths:     2,
		Scheduler: SchedRoundRobin,
		Packets:   3000,
		Health:    wireHealth(),
		Impairer:  NewRandomImpairer(ImpairConfig{Path: -1, DupFrac: 0.3, Seed: 7}),
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if rep.WireDups == 0 {
		t.Fatalf("30%% wire duplication produced no wire dups")
	}
	if rep.Delivered != rep.Packets {
		t.Fatalf("delivered %d of %d under duplication (loss-free impairment)", rep.Delivered, rep.Packets)
	}
}

// A path with heavy injected loss must flap (quarantine at least once)
// while hedging keeps end-to-end delivery complete; after the impairment
// window the path may recover via canaries.
func TestLoopbackLossFlapsPathHealth(t *testing.T) {
	impair := NewRandomImpairer(ImpairConfig{Path: 1, DropFrac: 0.9, Seed: 3})
	health := wireHealth()
	health.SuspectTimeout = sim.Duration(50 * time.Millisecond)
	health.DropWindowMin = 32
	rep, err := RunLoopback(LoopbackConfig{
		Paths:     2,
		Scheduler: SchedHedge,
		Flows:     2,
		Packets:   8000,
		Health:    health,
		Impairer:  impair,
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	dropped, _, _ := impair.Counts()
	if dropped == 0 {
		t.Fatalf("impairer injected no drops")
	}
	// Hedging means every packet also rode the clean path 0.
	if rep.Delivered != rep.Packets {
		t.Fatalf("delivered %d of %d despite a clean hedge path", rep.Delivered, rep.Packets)
	}
	if q := rep.Sender.Paths[1].Quarantines; q == 0 {
		t.Fatalf("path 1 at 90%% loss never quarantined: %+v", rep.Sender.Paths[1])
	}
	if rep.Sender.Paths[0].Quarantines != 0 {
		t.Fatalf("clean path 0 was quarantined: %+v", rep.Sender.Paths[0])
	}
}

// Echo-back frames must produce RTT samples at the sender.
func TestLoopbackEchoRTT(t *testing.T) {
	var mu sync.Mutex
	var samples int
	recvAddrs := make([]string, 2)
	for i := range recvAddrs {
		recvAddrs[i] = "127.0.0.1:0"
	}
	recv, err := Listen(ReceiverConfig{Addrs: recvAddrs, EchoBack: true})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var paths []PathConfig
	for _, a := range recv.Addrs() {
		paths = append(paths, PathConfig{RemoteAddr: a})
	}
	send, err := Dial(SenderConfig{
		Paths:     paths,
		Scheduler: SchedRoundRobin,
		Health:    wireHealth(),
		OnEcho: func(path int, h Header, rtt time.Duration) {
			mu.Lock()
			if rtt > 0 {
				samples++
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, err := send.Send(1, []byte("ping")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := samples
		mu.Unlock()
		if n > 100 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := send.Close(); err != nil {
		t.Fatalf("sender close: %v", err)
	}
	if err := recv.Close(); err != nil {
		t.Fatalf("receiver close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if samples == 0 {
		t.Fatalf("no RTT samples from echo-back")
	}
}

// The receiver must tolerate garbage datagrams without crashing or
// delivering anything.
func TestReceiverRejectsGarbage(t *testing.T) {
	recv, err := Listen(ReceiverConfig{Addrs: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer recv.Close()

	conn, err := net.Dial("udp", recv.Addrs()[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	for _, b := range [][]byte{
		[]byte("not a frame"),
		make([]byte, HeaderLen-1),
		make([]byte, HeaderLen+10), // zero magic
	} {
		if _, err := conn.Write(b); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		st := recv.Stats()
		if len(st.Paths) == 1 && st.Paths[0].BadFrames >= 3 {
			if st.Delivered != 0 {
				t.Fatalf("garbage was delivered: %+v", st)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("bad frames never counted: %+v", recv.Stats())
}

// Deliver callbacks observe packets with per-flow ordered seqs and intact
// payload bytes.
func TestLoopbackPayloadIntegrity(t *testing.T) {
	var mu sync.Mutex
	bad := 0
	rep, err := RunLoopback(LoopbackConfig{
		Paths:   2,
		Packets: 1000,
		Payload: 64,
		Health:  wireHealth(),
		OnDeliver: func(p *packet.Packet) {
			mu.Lock()
			defer mu.Unlock()
			if len(p.Data) != 64 {
				bad++
				return
			}
			for i, b := range p.Data {
				if b != byte(i) {
					bad++
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("RunLoopback: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if bad != 0 {
		t.Fatalf("%d packets arrived corrupted", bad)
	}
}
