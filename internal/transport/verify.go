package transport

import (
	"fmt"
	"strings"
	"sync"
)

// Verifier is the wire-path invariant checker, the transport analogue of
// internal/invariant: it shadows what the sender put on the wire and what
// the receiver surfaced to the application, and asserts the properties
// hedged multipath delivery promises:
//
//   - No duplicate delivery: each (flow, seq) reaches the app at most once,
//     no matter how many hedged copies the wire carried.
//   - In-order delivery: each flow's delivered seqs are strictly
//     increasing.
//   - No invention: every delivered (flow, seq) was actually sent.
//   - Conservation: delivered never exceeds sent (per flow and in total).
//
// It is pure bookkeeping — safe for concurrent NoteSent/NoteDelivered from
// the sender and receiver sides of a loopback pair.
type Verifier struct {
	mu sync.Mutex

	nextSent map[uint64]uint64 // flow -> next unsent seq (sent seqs are < this)
	nextDlv  map[uint64]uint64 // flow -> last delivered seq + 1

	sent      uint64
	delivered uint64

	maxViolations int
	violations    []string
	nViolations   uint64
}

// NewVerifier returns an empty checker.
func NewVerifier() *Verifier {
	return &Verifier{
		nextSent:      make(map[uint64]uint64),
		nextDlv:       make(map[uint64]uint64),
		maxViolations: 16,
	}
}

func (v *Verifier) violate(format string, args ...any) {
	v.nViolations++
	if len(v.violations) < v.maxViolations {
		v.violations = append(v.violations, fmt.Sprintf(format, args...))
	}
}

// NoteSent records that (flow, seq) entered the wire (hedged copies count
// once: call it per application packet, not per wire frame).
func (v *Verifier) NoteSent(flow, seq uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.sent++
	if next := v.nextSent[flow]; seq != next {
		v.violate("flow %x sent seq %d, want contiguous %d", flow, seq, next)
	}
	v.nextSent[flow] = seq + 1
}

// NoteDelivered records that (flow, seq) surfaced to the application.
func (v *Verifier) NoteDelivered(flow, seq uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.delivered++
	if next, known := v.nextSent[flow]; known && seq >= next {
		v.violate("flow %x delivered seq %d which was never sent (next unsent %d)", flow, seq, next)
	}
	if next := v.nextDlv[flow]; next > 0 && seq < next {
		if seq == next-1 {
			v.violate("flow %x delivered seq %d twice (duplicate surfaced)", flow, seq)
		} else {
			v.violate("flow %x delivered seq %d after seq %d (out of order)", flow, seq, next-1)
		}
		return
	}
	v.nextDlv[flow] = seq + 1
}

// Counts returns total application packets sent and delivered.
func (v *Verifier) Counts() (sent, delivered uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sent, v.delivered
}

// Violations returns the recorded messages (capped) and the exact count.
func (v *Verifier) Violations() ([]string, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.violations...), v.nViolations
}

// Finish runs the end-of-run checks and returns an error describing every
// violation, or nil. Losses are legal (UDP); over-delivery never is.
func (v *Verifier) Finish() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.delivered > v.sent {
		v.violate("over-delivery: %d delivered exceeds %d sent", v.delivered, v.sent)
	}
	for flow, next := range v.nextDlv {
		if sentNext, known := v.nextSent[flow]; known && next > sentNext {
			v.violate("flow %x delivered through seq %d but only sent through %d", flow, next-1, sentNext-1)
		}
	}
	if v.nViolations == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "transport invariant: %d violation(s):", v.nViolations)
	for _, m := range v.violations {
		b.WriteString("\n  - ")
		b.WriteString(m)
	}
	if uint64(len(v.violations)) < v.nViolations {
		fmt.Fprintf(&b, "\n  … and %d more", v.nViolations-uint64(len(v.violations)))
	}
	return fmt.Errorf("%s", b.String())
}
