package transport

import (
	"encoding/json"
	"testing"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/obs"
)

// The PR's acceptance criterion: in the loopback harness, the merged
// sender+receiver attribution must sum EXACTLY to the measured end-to-end
// latency for every sampled packet — every nanosecond between accept and
// in-order delivery assigned to precisely one stage.
func TestLoopbackWireAttributionExact(t *testing.T) {
	if testing.Short() {
		t.Skip("wire loopback in -short mode")
	}
	st := obs.NewWireRecorder(obs.WireSender, 1<<16, 1)
	rt := obs.NewWireRecorder(obs.WireReceiver, 1<<16, 1)
	rep, err := RunLoopback(LoopbackConfig{
		Paths:         2,
		Scheduler:     SchedHedge,
		Packets:       3000,
		Payload:       128,
		SenderTrace:   st,
		ReceiverTrace: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	m := obs.MergeWire(append(st.Events(), rt.Events()...))
	if m.Delivered == 0 {
		t.Fatal("merge saw no delivered packets")
	}
	if uint64(m.Delivered) != rep.Delivered {
		t.Fatalf("merge delivered %d, loopback delivered %d — sampling at rate 1 must cover every packet",
			m.Delivered, rep.Delivered)
	}
	if m.RTTSamples == 0 {
		t.Fatal("no RTT samples: ack events missing from the sender trace")
	}
	// Loopback shares one clock, so the estimated offset must be tiny
	// compared to real cross-host skew — generously, under a second.
	if off := m.OffsetNanos; off < -1e9 || off > 1e9 {
		t.Fatalf("loopback clock offset estimate %d ns is implausible", off)
	}
	complete := 0
	for _, tl := range m.Timelines {
		if tl.DeliverNanos == 0 {
			continue
		}
		if !tl.Complete {
			continue
		}
		complete++
		if got, want := tl.Attr.Total(), tl.E2E; got != want {
			t.Fatalf("flow %d seq %d: attribution sum %d != e2e %d (attr %+v)",
				tl.FlowID, tl.Seq, got, want, tl.Attr)
		}
		if tl.Attr.SenderQueue < 0 || tl.Attr.Propagation < 0 ||
			tl.Attr.ReorderWait < 0 || tl.Attr.Deliver < 0 {
			t.Fatalf("flow %d seq %d: negative stage in %+v", tl.FlowID, tl.Seq, tl.Attr)
		}
	}
	if complete != m.Delivered {
		t.Fatalf("%d of %d delivered timelines complete — ring truncated a clean full-sample run",
			complete, m.Delivered)
	}
}

// With tracing off, the transport must behave byte-identically to its
// pre-trace self: no new span stages, no new stats fields, zero events.
func TestUntracedRunChangesNothing(t *testing.T) {
	spans := NewSpans(nil)
	stages := spans.StageSnapshot()
	want := []string{"encode", "socket_write", "socket_read", "reorder", "deliver", "e2e"}
	if len(stages) != len(want) {
		t.Fatalf("untraced spans expose %d stages, want %d", len(stages), len(want))
	}
	for i, st := range stages {
		if st.Stage != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Stage, want[i])
		}
	}
	spans.EnableWireStages(nil)
	got := spans.StageSnapshot()
	wantWire := []string{"encode", "socket_write", "sender_queue", "socket_read",
		"flight", "reorder", "deliver", "e2e"}
	if len(got) != len(wantWire) {
		t.Fatalf("wire spans expose %d stages, want %d", len(got), len(wantWire))
	}
	for i, st := range got {
		if st.Stage != wantWire[i] {
			t.Fatalf("wire stage %d = %q, want %q", i, st.Stage, wantWire[i])
		}
	}

	rep, err := RunLoopback(LoopbackConfig{Packets: 200, Payload: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The stats JSON shape is the gateway's output contract: adding a
	// field here would change untraced gateway output.
	raw, err := json.Marshal(rep.Sender)
	if err != nil {
		t.Fatal(err)
	}
	var senderKeys map[string]any
	if err := json.Unmarshal(raw, &senderKeys); err != nil {
		t.Fatal(err)
	}
	for k := range senderKeys {
		switch k {
		case "packets", "frames", "canaries", "dup_bytes", "deadline", "paths":
		default:
			t.Errorf("SenderStats grew unexpected JSON field %q", k)
		}
	}
	raw, err = json.Marshal(rep.Receiver)
	if err != nil {
		t.Fatal(err)
	}
	var recvKeys map[string]any
	if err := json.Unmarshal(raw, &recvKeys); err != nil {
		t.Fatal(err)
	}
	for k := range recvKeys {
		switch k {
		case "delivered", "lost", "dup_drops", "reorder", "paths":
		default:
			t.Errorf("ReceiverStats grew unexpected JSON field %q", k)
		}
	}
}

// The sentinel-disabled identity pin: LoopbackReport's top-level JSON
// shape is the whole of the gateway's untraced output. The sentinel adds
// zero fields and zero behavior when off (OnStart nil), so any new key
// here means disabled-sentinel output changed.
func TestSentinelDisabledReportShapeUnchanged(t *testing.T) {
	rep, err := RunLoopback(LoopbackConfig{Packets: 100, Payload: 64})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for k := range keys {
		switch k {
		case "elapsed_ns", "packets", "frames", "delivered", "lost",
			"dup_drops", "wire_dups", "deadline_hits", "deadline_misses",
			"sender", "receiver", "violations", "n_violations", "spans":
		default:
			t.Errorf("LoopbackReport grew unexpected JSON field %q — disabled-sentinel gateway output changed", k)
		}
	}
}

// The sentinel's attachment points: OnStart fires once with the live
// endpoints, HealthSnapshot reads per-path health without touching
// sockets, and SetTraceSampling ramps both recorders.
func TestLoopbackOnStartAndRampHooks(t *testing.T) {
	st := obs.NewWireRecorder(obs.WireSender, 1<<12, 64)
	rt := obs.NewWireRecorder(obs.WireReceiver, 1<<12, 64)
	started := 0
	var health []PathHealthSnap
	rep, err := RunLoopback(LoopbackConfig{
		Packets:       200,
		Payload:       64,
		Paths:         2,
		SenderTrace:   st,
		ReceiverTrace: rt,
		OnStart: func(send *Sender, recv *Receiver) {
			started++
			health = send.HealthSnapshot()
			if prev := send.SetTraceSampling(1); prev != 64 {
				t.Errorf("sender ramp returned prev %d, want 64", prev)
			}
			if prev := recv.SetTraceSampling(1); prev != 64 {
				t.Errorf("receiver ramp returned prev %d, want 64", prev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if started != 1 {
		t.Fatalf("OnStart fired %d times, want 1", started)
	}
	if len(health) != 2 {
		t.Fatalf("HealthSnapshot returned %d paths, want 2", len(health))
	}
	for _, h := range health {
		if h.State == "" {
			t.Errorf("path %d health state empty", h.Path)
		}
	}
	if st.SampleEvery() != 1 || rt.SampleEvery() != 1 {
		t.Fatalf("ramp did not stick: sender %d receiver %d", st.SampleEvery(), rt.SampleEvery())
	}
	// Ramped to every-packet before the first send: both ends captured
	// every delivery, so the merge joins end to end.
	if rep.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	merge := obs.MergeWire(append(st.Events(), rt.Events()...))
	if merge.Delivered == 0 {
		t.Fatal("ramped run merged zero delivered timelines")
	}
}

// Untraced endpoints make the ramp a no-op, not a panic.
func TestSetTraceSamplingUntraced(t *testing.T) {
	s := &Sender{cfg: SenderConfig{}}
	if got := s.SetTraceSampling(1); got != 0 {
		t.Fatalf("untraced sender ramp = %d, want 0", got)
	}
	r := &Receiver{cfg: ReceiverConfig{}}
	if got := r.SetTraceSampling(1); got != 0 {
		t.Fatalf("untraced receiver ramp = %d, want 0", got)
	}
}

// ackPath fabricates a path for handleAck unit tests (no sockets).
func ackPath() (*Sender, *senderPath) {
	s := &Sender{cfg: SenderConfig{}}
	p := &senderPath{health: core.NewHealthTracker(core.HealthConfig{})}
	return s, p
}

// Satellite: RTT-echo correctness under duplicated and reordered acks.
// The cumulative guard admits EQUAL (high, recv) — a duplicated ack, or a
// sweep ack repeating the newest echo — so RTT freshness must key on the
// echo itself, or replays re-sample a stale send timestamp against a
// later clock and inflate the EWMA.
func TestHandleAckDuplicateNeverInflatesRTT(t *testing.T) {
	s, p := ackPath()
	echo := nowNanos() - time.Millisecond.Nanoseconds()
	ack := Header{Flags: FlagAck, Seq: 10, PathSeq: 10, SendNanos: echo}
	s.handleAck(p, ack)
	if p.rttNanos <= 0 {
		t.Fatalf("fresh ack produced no RTT sample (rtt=%d)", p.rttNanos)
	}
	first := p.rttNanos

	// Replay the identical ack after time has passed: the cumulative guard
	// admits it (equal watermarks), the echo guard must reject the sample.
	time.Sleep(3 * time.Millisecond)
	s.handleAck(p, ack)
	if p.rttNanos != first {
		t.Fatalf("duplicated ack moved the RTT EWMA: %d -> %d", first, p.rttNanos)
	}

	// A sweep ack advancing recv while repeating the same newest echo must
	// also not re-sample.
	s.handleAck(p, Header{Flags: FlagAck, Seq: 12, PathSeq: 12, SendNanos: echo})
	if p.rttNanos != first {
		t.Fatalf("sweep ack with a stale echo moved the RTT EWMA: %d -> %d", first, p.rttNanos)
	}
}

func TestHandleAckReorderedAndSkewed(t *testing.T) {
	s, p := ackPath()
	now := nowNanos()
	s.handleAck(p, Header{Flags: FlagAck, Seq: 10, PathSeq: 10,
		SendNanos: now - 2*time.Millisecond.Nanoseconds()})
	first := p.rttNanos

	// A strictly older ack (reordered in the network) is rejected outright
	// by the cumulative guard.
	s.handleAck(p, Header{Flags: FlagAck, Seq: 5, PathSeq: 5,
		SendNanos: now - 10*time.Millisecond.Nanoseconds()})
	if p.ackRecv != 10 || p.rttNanos != first {
		t.Fatalf("reordered ack regressed state: recv=%d rtt=%d", p.ackRecv, p.rttNanos)
	}

	// Within-path frame reordering can regress the receiver's lastSend, so
	// a NEWER ack can carry an OLDER echo: it must advance the watermarks
	// without folding the stale echo into the EWMA (the sample would be an
	// inflated phantom RTT).
	s.handleAck(p, Header{Flags: FlagAck, Seq: 11, PathSeq: 11,
		SendNanos: now - 50*time.Millisecond.Nanoseconds()})
	if p.ackRecv != 11 {
		t.Fatal("newer ack with an older echo must still advance accounting")
	}
	if p.rttNanos != first {
		t.Fatalf("stale echo on a newer ack moved the RTT EWMA: %d -> %d", first, p.rttNanos)
	}

	// A clock-skewed echo from the future must never produce a negative or
	// zero sample.
	s.handleAck(p, Header{Flags: FlagAck, Seq: 12, PathSeq: 12,
		SendNanos: nowNanos() + time.Second.Nanoseconds()})
	if p.rttNanos != first {
		t.Fatalf("future echo moved the RTT EWMA: %d -> %d", first, p.rttNanos)
	}
	if p.rttNanos < 0 {
		t.Fatalf("negative RTT EWMA: %d", p.rttNanos)
	}
}

// Every ack folded in emits a WireAckRx event carrying the RTT sample (or
// 0 for a stale echo) — the merge layer's clock-offset signal.
func TestHandleAckEmitsWireEvent(t *testing.T) {
	tr := obs.NewWireRecorder(obs.WireSender, 16, 1)
	s, p := ackPath()
	s.cfg.Trace = tr
	echo := nowNanos() - time.Millisecond.Nanoseconds()
	s.handleAck(p, Header{Flags: FlagAck, Seq: 10, PathSeq: 10, SendNanos: echo})
	s.handleAck(p, Header{Flags: FlagAck, Seq: 10, PathSeq: 10, SendNanos: echo}) // duplicate
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (acks are never flow-sampled)", len(evs))
	}
	if evs[0].Kind != obs.WireAckRx || evs[0].A <= 0 {
		t.Fatalf("first ack event %+v: want WireAckRx with a positive RTT sample", evs[0])
	}
	if evs[1].A != 0 {
		t.Fatalf("duplicated ack event carried RTT sample %d, want 0", evs[1].A)
	}
}

// Scheduler verdict bits surface the deadline/dup decision per packet.
func TestSchedulerVerdictBits(t *testing.T) {
	paths := deadlineTestPaths(1_000_000, 2_000_000) // 1 ms and 2 ms RTT
	sch := &scheduler{name: SchedDeadline, deadlineNanos: 10_000_000, margin: 1}
	sch.pick(paths, 0, 100)
	if sch.verdict != 0 {
		t.Fatalf("safe pick verdict = %b, want 0", sch.verdict)
	}

	// Deadline below the best estimate: at-risk, and with no budget the
	// duplicate is denied.
	sch = &scheduler{name: SchedDeadline, deadlineNanos: 100, margin: 1}
	sch.pick(paths, 0, 100)
	if sch.verdict != obs.WireSchedAtRisk|obs.WireSchedDenied {
		t.Fatalf("verdict = %b, want at-risk|denied", sch.verdict)
	}

	// With a funded budget the duplicate is granted.
	sch = &scheduler{name: SchedDeadline, deadlineNanos: 100, margin: 1,
		budget: newWireDupBudget(1e6, 1e6)}
	picks, _ := sch.pick(paths, 0, 100)
	if sch.verdict != obs.WireSchedAtRisk|obs.WireSchedDup {
		t.Fatalf("verdict = %b, want at-risk|dup", sch.verdict)
	}
	if len(picks) != 2 {
		t.Fatalf("granted duplicate but %d picks", len(picks))
	}
}

// A traced loopback run under wire faults still satisfies the identity
// for every complete timeline, and losses surface as lost timelines.
func TestLoopbackWireTraceWithImpairment(t *testing.T) {
	if testing.Short() {
		t.Skip("wire loopback in -short mode")
	}
	st := obs.NewWireRecorder(obs.WireSender, 1<<16, 1)
	rt := obs.NewWireRecorder(obs.WireReceiver, 1<<16, 1)
	rep, err := RunLoopback(LoopbackConfig{
		Paths:          2,
		Scheduler:      SchedRoundRobin,
		Packets:        1500,
		Payload:        128,
		ReorderTimeout: 2 * time.Millisecond,
		Impairer:       NewRandomImpairer(ImpairConfig{Path: 0, DropFrac: 0.2, Seed: 42}),
		SenderTrace:    st,
		ReceiverTrace:  rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	m := obs.MergeWire(append(st.Events(), rt.Events()...))
	for _, tl := range m.Timelines {
		if tl.DeliverNanos == 0 || !tl.Complete {
			continue
		}
		if tl.Attr.Total() != tl.E2E {
			t.Fatalf("flow %d seq %d: sum %d != e2e %d under impairment",
				tl.FlowID, tl.Seq, tl.Attr.Total(), tl.E2E)
		}
	}
	if rep.Lost > 0 && m.Lost == 0 {
		t.Fatalf("loopback lost %d packets but the merge saw no lost timelines", rep.Lost)
	}
}
