package vnet

import (
	"strings"
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

func TestLaneAccessors(t *testing.T) {
	s := sim.New()
	chain := nf.PresetChain(1)
	l := NewLane(7, s, DefaultLaneConfig(chain), xrand.New(1), nil)
	if l.ID() != 7 {
		t.Fatalf("ID() = %d", l.ID())
	}
	if l.Chain() != chain {
		t.Fatal("Chain() accessor broken")
	}
	if !strings.Contains(l.String(), "lane7") {
		t.Fatalf("String() = %q", l.String())
	}
	if l.Utilization() != 0 {
		t.Fatal("fresh lane utilization nonzero")
	}
}

func TestDefaultLaneConfig(t *testing.T) {
	cfg := DefaultLaneConfig(nf.PresetChain(1))
	if cfg.QueueCap != 512 || cfg.JitterSigma != 0.15 || cfg.DispatchOverhead != 150 {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
}

func TestDefaultInterferenceConfig(t *testing.T) {
	cfg := DefaultInterferenceConfig()
	if cfg.SlowFactor != 4 || cfg.MeanOn != 200*sim.Microsecond {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
	// Duty cycle 10%.
	duty := float64(cfg.MeanOn) / float64(cfg.MeanOn+cfg.MeanOff)
	if duty < 0.09 || duty > 0.11 {
		t.Fatalf("duty cycle %v", duty)
	}
}

func TestInterferenceStopFreezes(t *testing.T) {
	s := sim.New()
	i := NewInterference(s, xrand.New(2), DefaultInterferenceConfig())
	s.RunUntil(5 * sim.Millisecond)
	episodes := i.Episodes()
	i.Stop()
	s.RunUntil(100 * sim.Millisecond)
	if i.Episodes() != episodes {
		t.Fatalf("episodes advanced after Stop: %d -> %d", episodes, i.Episodes())
	}
	var nilI *Interference
	nilI.Stop() // nil-safe
}

func TestScriptedSlowdownWindows(t *testing.T) {
	sd := &ScriptedSlowdown{Windows: []SlowWindow{
		{Start: 100, End: 200, Factor: 4},
		{Start: 300, End: 400, Factor: 8},
		{Start: 500, End: 600, Factor: 0.5}, // invalid factor: ignored
	}}
	cases := []struct {
		now  sim.Time
		want float64
	}{
		{50, 1}, {100, 4}, {199, 4}, {200, 1}, {350, 8}, {550, 1}, {700, 1},
	}
	for _, c := range cases {
		if got := sd.Factor(c.now); got != c.want {
			t.Errorf("Factor(%d) = %v, want %v", c.now, got, c.want)
		}
	}
}

func TestStrictPriorityScanAndAccessors(t *testing.T) {
	sp := NewStrictPriority(30)
	for i := uint64(1); i <= 3; i++ {
		sp.Enqueue(classedPkt(t, i, nf.ClassBulk))
	}
	sp.Enqueue(classedPkt(t, 9, nf.ClassLatencySensitive))
	if sp.Len() != 4 {
		t.Fatalf("Len() = %d", sp.Len())
	}
	if sp.Bytes() <= 0 {
		t.Fatal("Bytes() zero")
	}
	// Scan order visits priority bands first and can stop early.
	var seen []uint64
	sp.Scan(func(p *packet.Packet) bool {
		seen = append(seen, p.ID)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 9 {
		t.Fatalf("scan order/early-stop: %v", seen)
	}
}

func TestDRRScanAndDegenerateQuanta(t *testing.T) {
	d := NewDRR(30, [3]int{1, 1, 1}) // quanta far below frame size
	d.Enqueue(classedPkt(t, 1, nf.ClassLatencySensitive))
	d.Enqueue(classedPkt(t, 2, nf.ClassBulk))
	count := 0
	d.Scan(func(*packet.Packet) bool { count++; return true })
	if count != 2 {
		t.Fatalf("scan visited %d", count)
	}
	// Degenerate quanta must still make progress (fallback path) —
	// deficit accumulation would need hundreds of rounds otherwise.
	got := 0
	for d.Dequeue() != nil {
		got++
	}
	if got != 2 {
		t.Fatalf("degenerate quanta drained %d of 2", got)
	}
}

func TestFIFOPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewFIFO(0)
}
