package vnet

import (
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// Interference models a noisy neighbor sharing the lane's physical core: an
// ON/OFF renewal process with exponentially distributed episode lengths.
// While ON, the lane's service times are multiplied by SlowFactor — the
// co-located tenant is stealing cycles, trashing caches, or triggering the
// hypervisor scheduler. This is the root cause of "last-mile" stragglers
// the paper's multipath data plane routes around.
//
// Episodes are per-lane and independent across lanes (each core has its own
// neighbor), which is precisely what makes path diversity valuable: when
// one lane is ON, its siblings usually are not.
type Interference struct {
	sim *sim.Simulator
	rng *xrand.Rand
	cfg InterferenceConfig

	active      bool
	stopped     bool
	episodes    uint64
	activeSince sim.Time
	activeTotal sim.Duration
}

// InterferenceConfig parameterizes the ON/OFF process.
type InterferenceConfig struct {
	// SlowFactor multiplies service time while ON (e.g. 4.0). 1.0 is a
	// no-op neighbor.
	SlowFactor float64
	// MeanOn is the mean length of a slow episode.
	MeanOn sim.Duration
	// MeanOff is the mean gap between episodes. Duty cycle is
	// MeanOn/(MeanOn+MeanOff).
	MeanOff sim.Duration
	// StartActive starts the process in the ON state.
	StartActive bool
}

// DefaultInterferenceConfig is the moderate noisy neighbor used across the
// experiment suite: 4× slowdown, 200 µs episodes, ~10% duty cycle. These
// magnitudes follow public measurements of VM CPU steal and LLC thrashing.
func DefaultInterferenceConfig() InterferenceConfig {
	return InterferenceConfig{
		SlowFactor: 4.0,
		MeanOn:     200 * sim.Microsecond,
		MeanOff:    1800 * sim.Microsecond,
	}
}

// NewInterference starts the process on s. A nil return for zero-effect
// configs keeps callers branch-free: passing factor<=1 or MeanOn<=0 yields
// nil, and a nil *Interference is valid (Factor always 1).
func NewInterference(s *sim.Simulator, rng *xrand.Rand, cfg InterferenceConfig) *Interference {
	if cfg.SlowFactor <= 1 || cfg.MeanOn <= 0 || cfg.MeanOff <= 0 {
		return nil
	}
	i := &Interference{sim: s, rng: rng, cfg: cfg, active: cfg.StartActive}
	if i.active {
		i.activeSince = s.Now()
		i.episodes++
	}
	i.scheduleToggle()
	return i
}

func (i *Interference) scheduleToggle() {
	var mean sim.Duration
	if i.active {
		mean = i.cfg.MeanOn
	} else {
		mean = i.cfg.MeanOff
	}
	d := sim.Duration(i.rng.ExpFloat64(1 / float64(mean)))
	if d < 1 {
		d = 1
	}
	i.sim.Schedule(d, i.toggle)
}

// Stop freezes the process in its current state; no further toggles fire.
// Harness code uses it to let the event queue drain after the measurement
// window. Safe on nil.
func (i *Interference) Stop() {
	if i != nil {
		i.stopped = true
	}
}

func (i *Interference) toggle() {
	if i.stopped {
		return
	}
	now := i.sim.Now()
	if i.active {
		i.activeTotal += now - i.activeSince
		i.active = false
	} else {
		i.active = true
		i.activeSince = now
		i.episodes++
	}
	i.scheduleToggle()
}

// Factor returns the current service-time multiplier. Safe on nil.
func (i *Interference) Factor(now sim.Time) float64 {
	if i == nil || !i.active {
		return 1
	}
	return i.cfg.SlowFactor
}

// Active reports whether a slow episode is in progress. Safe on nil.
func (i *Interference) Active() bool { return i != nil && i.active }

// Episodes returns how many slow episodes have started. Safe on nil.
func (i *Interference) Episodes() uint64 {
	if i == nil {
		return 0
	}
	return i.episodes
}

// ActiveFraction returns the fraction of virtual time spent ON so far.
func (i *Interference) ActiveFraction() float64 {
	if i == nil {
		return 0
	}
	now := i.sim.Now()
	if now == 0 {
		return 0
	}
	total := i.activeTotal
	if i.active {
		total += now - i.activeSince
	}
	return float64(total) / float64(now)
}
