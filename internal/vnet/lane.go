// Package vnet is the virtualized-host substrate of MPDP: bounded packet
// queues served by simulated CPU cores running NF chains, plus the
// noisy-neighbor interference process that creates last-mile stragglers.
//
// The central abstraction is the Lane: one (queue, core, chain-replica)
// tuple, i.e. one *path* through the host data plane. The multipath layer
// (internal/core) schedules packets across a set of lanes; a single-lane
// configuration reproduces the conventional single-path data plane.
//
// Service on a lane is run-to-completion, like a DPDK poll-mode worker: the
// core takes the head packet, runs the full chain on it, and only then looks
// at the queue again. Service time is the chain's deterministic CPU cost,
// multiplied by log-normal cache/branch jitter and by the lane's current
// interference factor.
package vnet

import (
	"fmt"
	"math"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// LaneConfig parameterizes one lane.
type LaneConfig struct {
	// QueueCap bounds the number of waiting packets (not counting the one
	// in service). Arrivals beyond it are dropped as DropQueueFull.
	QueueCap int
	// Qdisc overrides the queueing discipline (default: FIFO of QueueCap).
	// Capacity is then the discipline's own; QueueCap is ignored.
	Qdisc Qdisc
	// Chain is this lane's NF chain replica. Required.
	Chain *nf.Chain
	// DispatchOverhead is the fixed per-packet cost of the vswitch getting
	// the packet onto and off the core (descriptor handling, prefetch).
	DispatchOverhead sim.Duration
	// JitterSigma is the σ of the log-normal service-time jitter
	// (0 disables jitter; 0.1–0.2 matches measured software-NF variance).
	JitterSigma float64
	// Interference, if non-nil, supplies the lane's slowdown factor —
	// usually a stochastic *Interference, or a ScriptedSlowdown in
	// timeline experiments.
	Interference Slowdown
	// StageHook, if non-nil, observes every chain element's result as the
	// lane serves a packet (see nf.StageHook). Virtual-time only: hooks
	// read r.Cost, never a clock, so an attached hook changes no run
	// outcome.
	StageHook nf.StageHook
}

// Slowdown supplies a time-varying service-time multiplier for a lane.
type Slowdown interface {
	// Factor returns the current multiplier (>= 1; 1 = no slowdown).
	Factor(now sim.Time) float64
}

// DefaultLaneConfig returns the configuration used across the experiment
// suite: a 512-packet queue, 150 ns dispatch cost, σ=0.15 jitter.
func DefaultLaneConfig(chain *nf.Chain) LaneConfig {
	return LaneConfig{
		QueueCap:         512,
		Chain:            chain,
		DispatchOverhead: 150 * sim.Nanosecond,
		JitterSigma:      0.15,
	}
}

// DoneFunc receives every packet whose service completed, with the chain's
// verdict. Policy-dropped packets are reported too (verdict Drop) so the
// caller can account for them.
type DoneFunc func(p *packet.Packet, verdict packet.Verdict)

// FailMode is a lane's injected failure state.
type FailMode uint8

const (
	// LaneHealthy is normal operation.
	LaneHealthy FailMode = iota
	// LaneFailStop models a detectable fail-stop: the lane refuses new
	// packets (Enqueue returns false with DropPathFailed) and everything
	// it held at failure time is handed back synchronously.
	LaneFailStop
	// LaneBlackhole models a silent failure (hung core, wedged queue): the
	// lane keeps accepting packets but never serves them. Nothing is
	// reported; only a watchdog noticing the missing completions can tell.
	LaneBlackhole
)

func (m FailMode) String() string {
	switch m {
	case LaneHealthy:
		return "healthy"
	case LaneFailStop:
		return "fail-stop"
	case LaneBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("failmode(%d)", uint8(m))
	}
}

// Lane is one path through the host data plane.
type Lane struct {
	id   int
	sim  *sim.Simulator
	cfg  LaneConfig
	rng  *xrand.Rand
	done DoneFunc

	queue   Qdisc
	serving *packet.Packet

	// Failure injection state. parked holds a packet whose service was cut
	// short by a blackhole (the hung core still "owns" it); finishEv is the
	// pending completion event, cancelled on failure.
	failMode FailMode
	parked   *packet.Packet
	finishEv *sim.Event

	// Counters.
	enqueued   uint64
	tailDrops  uint64
	failDrops  uint64
	served     uint64
	cancelSkip uint64
	busyUntil  sim.Time
	busyTotal  sim.Duration
}

// NewLane builds a lane on simulator s. rng seeds the lane's private jitter
// stream; done receives completions. It panics on a nil chain or simulator.
func NewLane(id int, s *sim.Simulator, cfg LaneConfig, rng *xrand.Rand, done DoneFunc) *Lane {
	if s == nil {
		panic("vnet: NewLane with nil simulator")
	}
	if cfg.Chain == nil {
		panic("vnet: NewLane with nil chain")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 512
	}
	if cfg.Qdisc == nil {
		cfg.Qdisc = NewFIFO(cfg.QueueCap)
	}
	return &Lane{id: id, sim: s, cfg: cfg, rng: rng, done: done, queue: cfg.Qdisc}
}

// ID returns the lane's identifier.
func (l *Lane) ID() int { return l.id }

// Chain returns the lane's NF chain replica.
func (l *Lane) Chain() *nf.Chain { return l.cfg.Chain }

// QueueDepth returns waiting packets plus the one in service (or parked on
// a blackholed core).
func (l *Lane) QueueDepth() int {
	d := l.queue.Len()
	if l.serving != nil {
		d++
	}
	if l.parked != nil {
		d++
	}
	return d
}

// QueuedBytes returns the byte backlog (waiting packets only).
func (l *Lane) QueuedBytes() int { return l.queue.Bytes() }

// Enqueue admits a packet at the current virtual time. It returns false and
// stamps the drop reason (DropQueueFull, or DropPathFailed on a fail-stop
// lane) if the packet is rejected. A blackholed lane accepts packets
// normally — they just never come back.
func (l *Lane) Enqueue(p *packet.Packet) bool {
	now := l.sim.Now()
	p.Enqueued = now
	p.PathID = l.id
	if l.failMode == LaneFailStop {
		l.failDrops++
		p.Dropped = packet.DropPathFailed
		return false
	}
	if !l.queue.Enqueue(p) {
		l.tailDrops++
		p.Dropped = packet.DropQueueFull
		return false
	}
	l.enqueued++
	if l.serving == nil && l.parked == nil && l.failMode == LaneHealthy {
		l.startNext()
	}
	return true
}

// startNext begins service on the next packet, skipping cancelled ones.
func (l *Lane) startNext() {
	now := l.sim.Now()
	for {
		p := l.queue.Dequeue()
		if p == nil {
			return
		}
		if p.Cancelled {
			// A duplicate whose twin already won: discard without cost.
			l.cancelSkip++
			p.Dropped = packet.DropCancelled
			continue
		}
		l.serving = p
		p.ServiceAt = now

		result := l.cfg.Chain.ProcessHooked(now, p, l.cfg.StageHook)
		svc := l.serviceTime(result.Cost)
		l.busyUntil = now + svc
		l.busyTotal += svc
		l.finishEv = l.sim.Schedule(svc, func() { l.finish(p, result.Verdict) })
		return
	}
}

// Fail puts the lane into the given failure mode.
//
//   - LaneFailStop: the in-service packet (service aborted) and every queued
//     packet are handed to drop synchronously; subsequent Enqueues are
//     refused with DropPathFailed.
//   - LaneBlackhole: the in-service packet's completion is cancelled and the
//     packet parked (the hung core still holds it); queued packets stay put
//     and new arrivals are silently accepted. drop is not called — a silent
//     failure reports nothing.
//
// Failing an already-failed lane only switches the mode (a blackhole
// escalating to fail-stop drains via drop). drop may be nil.
func (l *Lane) Fail(mode FailMode, drop func(p *packet.Packet)) {
	if mode == LaneHealthy {
		l.Recover()
		return
	}
	l.failMode = mode
	if l.finishEv != nil {
		l.finishEv.Cancel()
		l.finishEv = nil
	}
	if l.serving != nil {
		l.parked, l.serving = l.serving, nil
		l.busyUntil = l.sim.Now()
	}
	if mode == LaneFailStop {
		l.DrainFailed(drop)
	}
}

// DrainFailed hands the parked packet and the entire queue to drop (cancelled
// duplicates are skipped — their accounting happened at cancel time). Used at
// fail-stop time and when a watchdog declares a blackholed lane dead, so the
// caller can hole-punch every in-flight packet.
func (l *Lane) DrainFailed(drop func(p *packet.Packet)) {
	emit := func(p *packet.Packet) {
		p.Dropped = packet.DropPathFailed
		l.failDrops++
		if drop != nil && !p.Cancelled {
			drop(p)
		}
	}
	if l.parked != nil {
		emit(l.parked)
		l.parked = nil
	}
	for {
		p := l.queue.Dequeue()
		if p == nil {
			return
		}
		if p.Cancelled {
			l.cancelSkip++
			p.Dropped = packet.DropCancelled
			continue
		}
		emit(p)
	}
}

// Recover returns the lane to healthy operation. A parked blackhole packet
// restarts service from scratch (the core rebooted mid-packet); otherwise
// service resumes from the queue.
func (l *Lane) Recover() {
	if l.failMode == LaneHealthy {
		return
	}
	l.failMode = LaneHealthy
	if p := l.parked; p != nil {
		l.parked = nil
		now := l.sim.Now()
		l.serving = p
		p.ServiceAt = now
		result := l.cfg.Chain.ProcessHooked(now, p, l.cfg.StageHook)
		svc := l.serviceTime(result.Cost)
		l.busyUntil = now + svc
		l.busyTotal += svc
		l.finishEv = l.sim.Schedule(svc, func() { l.finish(p, result.Verdict) })
		return
	}
	if l.serving == nil {
		l.startNext()
	}
}

// FailState returns the lane's current failure mode.
func (l *Lane) FailState() FailMode { return l.failMode }

// serviceTime applies dispatch overhead, jitter, and interference to the
// chain's deterministic CPU cost.
func (l *Lane) serviceTime(cost sim.Duration) sim.Duration {
	t := float64(cost + l.cfg.DispatchOverhead)
	if l.cfg.JitterSigma > 0 && l.rng != nil {
		// mu = -sigma^2/2 keeps the mean multiplier at 1.
		sigma := l.cfg.JitterSigma
		t *= l.rng.LogNormal(-sigma*sigma/2, sigma)
	}
	if l.cfg.Interference != nil {
		t *= l.cfg.Interference.Factor(l.sim.Now())
	}
	if t < 1 {
		t = 1
	}
	return sim.Duration(math.Round(t))
}

func (l *Lane) finish(p *packet.Packet, verdict packet.Verdict) {
	now := l.sim.Now()
	p.Done = now
	l.serving = nil
	l.finishEv = nil
	l.served++
	if l.done != nil {
		l.done(p, verdict)
	}
	l.startNext()
}

// CancelQueued marks any *waiting* packet with the given ID as cancelled;
// it is skipped (cost-free) when it reaches the head. A packet already in
// service cannot be cancelled — the core finishes what it started, exactly
// like a real run-to-completion worker. Returns whether a waiting packet
// was found.
func (l *Lane) CancelQueued(id uint64) bool {
	found := false
	l.queue.Scan(func(p *packet.Packet) bool {
		if p.ID == id && !p.Cancelled {
			p.Cancelled = true
			found = true
			return false
		}
		return true
	})
	return found
}

// EstWait estimates the queueing delay a new arrival would see: the
// remaining service of the in-flight packet plus a per-queued-packet cost
// estimate. The multipath JSQ/adaptive policies use this as their signal.
func (l *Lane) EstWait(perPacketEst sim.Duration) sim.Duration {
	var w sim.Duration
	if l.serving != nil {
		if rem := l.busyUntil - l.sim.Now(); rem > 0 {
			w += rem
		}
	}
	w += sim.Duration(l.queue.Len()) * perPacketEst
	return w
}

// LaneStats is a snapshot of a lane's counters.
type LaneStats struct {
	ID         int
	Enqueued   uint64
	Served     uint64
	TailDrops  uint64
	FailDrops  uint64
	CancelSkip uint64
	BusyTotal  sim.Duration
}

// Stats returns a snapshot of the lane's counters.
func (l *Lane) Stats() LaneStats {
	return LaneStats{
		ID:         l.id,
		Enqueued:   l.enqueued,
		Served:     l.served,
		TailDrops:  l.tailDrops,
		FailDrops:  l.failDrops,
		CancelSkip: l.cancelSkip,
		BusyTotal:  l.busyTotal,
	}
}

// Utilization returns the fraction of elapsed virtual time this lane's core
// spent serving packets.
func (l *Lane) Utilization() float64 {
	now := l.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(l.busyTotal) / float64(now)
}

func (l *Lane) String() string {
	return fmt.Sprintf("lane%d(q=%d served=%d drops=%d)", l.id, l.QueueDepth(), l.served, l.tailDrops)
}
