package vnet

import (
	"mpdp/internal/packet"
)

// Qdisc is a lane's queueing discipline. Implementations are single-
// threaded (driven by one simulated core) and bounded by a capacity set at
// construction.
//
// Cancelled packets are not removed eagerly; disciplines skip them at
// dequeue (the lane counts the skips).
type Qdisc interface {
	// Enqueue admits a packet; false means the discipline dropped it
	// (caller stamps the drop reason).
	Enqueue(p *packet.Packet) bool
	// Dequeue returns the next packet to serve, or nil when empty.
	Dequeue() *packet.Packet
	// Len returns the number of queued packets (including cancelled ones
	// not yet skipped).
	Len() int
	// Bytes returns the queued byte backlog.
	Bytes() int
	// Scan visits queued packets until fn returns false. Used for
	// cancellation marking.
	Scan(fn func(p *packet.Packet) bool)
}

// FIFO is the default drop-tail discipline.
type FIFO struct {
	cap   int
	queue []*packet.Packet
	bytes int
}

// NewFIFO builds a FIFO with the given capacity (packets).
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic("vnet: NewFIFO with non-positive capacity")
	}
	return &FIFO{cap: capacity}
}

// Enqueue implements Qdisc.
func (f *FIFO) Enqueue(p *packet.Packet) bool {
	if len(f.queue) >= f.cap {
		return false
	}
	f.queue = append(f.queue, p)
	f.bytes += p.Size()
	return true
}

// Dequeue implements Qdisc.
func (f *FIFO) Dequeue() *packet.Packet {
	if len(f.queue) == 0 {
		return nil
	}
	p := f.queue[0]
	f.queue = f.queue[1:]
	f.bytes -= p.Size()
	return p
}

// Len implements Qdisc.
func (f *FIFO) Len() int { return len(f.queue) }

// Bytes implements Qdisc.
func (f *FIFO) Bytes() int { return f.bytes }

// Scan implements Qdisc.
func (f *FIFO) Scan(fn func(*packet.Packet) bool) {
	for _, p := range f.queue {
		if !fn(p) {
			return
		}
	}
}

// classOf maps a packet to a band via the DSCP bits the classifier stamps
// (see nf.Classifier): 1 = latency-sensitive, 0 = default, 2 = bulk.
// Unparseable frames go to the default band.
func classBand(p *packet.Packet) int {
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.IsIP {
		return 1
	}
	switch pr.IP.TOS >> 2 {
	case 1: // latency-sensitive
		return 0
	case 2: // bulk
		return 2
	default:
		return 1
	}
}

// StrictPriority serves three bands in strict order: latency-sensitive
// first, then default, then bulk. Each band gets an equal share of the
// total capacity, so bulk floods cannot starve admission of the other
// bands.
type StrictPriority struct {
	bands [3]*FIFO
}

// NewStrictPriority builds the discipline with a total capacity split
// across the three bands.
func NewStrictPriority(capacity int) *StrictPriority {
	if capacity < 3 {
		capacity = 3
	}
	per := capacity / 3
	return &StrictPriority{bands: [3]*FIFO{NewFIFO(per), NewFIFO(per), NewFIFO(per)}}
}

// Enqueue implements Qdisc.
func (sp *StrictPriority) Enqueue(p *packet.Packet) bool {
	return sp.bands[classBand(p)].Enqueue(p)
}

// Dequeue implements Qdisc.
func (sp *StrictPriority) Dequeue() *packet.Packet {
	for _, b := range sp.bands {
		if p := b.Dequeue(); p != nil {
			return p
		}
	}
	return nil
}

// Len implements Qdisc.
func (sp *StrictPriority) Len() int {
	return sp.bands[0].Len() + sp.bands[1].Len() + sp.bands[2].Len()
}

// Bytes implements Qdisc.
func (sp *StrictPriority) Bytes() int {
	return sp.bands[0].Bytes() + sp.bands[1].Bytes() + sp.bands[2].Bytes()
}

// Scan implements Qdisc.
func (sp *StrictPriority) Scan(fn func(*packet.Packet) bool) {
	stop := false
	for _, b := range sp.bands {
		if stop {
			return
		}
		b.Scan(func(p *packet.Packet) bool {
			if !fn(p) {
				stop = true
				return false
			}
			return true
		})
	}
}

// DRR is a three-band deficit round robin: bands share the core in
// proportion to their quanta (bytes per round) instead of strictly, so
// bulk traffic keeps a guaranteed floor while latency-sensitive traffic
// gets most of the bandwidth.
type DRR struct {
	bands    [3]*FIFO
	quanta   [3]int
	deficit  [3]int
	active   int  // round-robin cursor
	credited bool // whether the active band received this visit's quantum
}

// NewDRR builds the discipline. quanta are bytes per round per band
// (index: 0 latency-sensitive, 1 default, 2 bulk); zero takes {3000,
// 1500, 750}.
func NewDRR(capacity int, quanta [3]int) *DRR {
	if capacity < 3 {
		capacity = 3
	}
	for i, q := range quanta {
		if q <= 0 {
			quanta[i] = []int{3000, 1500, 750}[i]
		}
	}
	per := capacity / 3
	return &DRR{
		bands:  [3]*FIFO{NewFIFO(per), NewFIFO(per), NewFIFO(per)},
		quanta: quanta,
	}
}

// Enqueue implements Qdisc.
func (d *DRR) Enqueue(p *packet.Packet) bool {
	return d.bands[classBand(p)].Enqueue(p)
}

// Dequeue implements Qdisc. Textbook DRR: a band receives its quantum only
// when the round-robin pointer arrives at it; once its deficit cannot cover
// the head frame, the pointer moves on (the residual deficit persists, so
// every non-empty band is served eventually regardless of quantum size).
func (d *DRR) Dequeue() *packet.Packet {
	if d.Len() == 0 {
		return nil
	}
	// Deficit grows by one quantum per full round, so the number of rounds
	// needed is bounded by maxFrame/minQuantum; 64 visits is ample for any
	// sane configuration and the Len() check above guarantees progress.
	for visit := 0; visit < 64; visit++ {
		band := d.bands[d.active]
		if band.Len() == 0 {
			d.deficit[d.active] = 0
			d.advance()
			continue
		}
		if !d.credited {
			d.deficit[d.active] += d.quanta[d.active]
			d.credited = true
		}
		head := band.queue[0]
		if d.deficit[d.active] >= head.Size() {
			d.deficit[d.active] -= head.Size()
			return band.Dequeue()
		}
		d.advance()
	}
	// Degenerate quanta: serve any head to guarantee progress.
	for i := range d.bands {
		if p := d.bands[i].Dequeue(); p != nil {
			return p
		}
	}
	return nil
}

func (d *DRR) advance() {
	d.active = (d.active + 1) % 3
	d.credited = false
}

// Len implements Qdisc.
func (d *DRR) Len() int {
	return d.bands[0].Len() + d.bands[1].Len() + d.bands[2].Len()
}

// Bytes implements Qdisc.
func (d *DRR) Bytes() int {
	return d.bands[0].Bytes() + d.bands[1].Bytes() + d.bands[2].Bytes()
}

// Scan implements Qdisc.
func (d *DRR) Scan(fn func(*packet.Packet) bool) {
	stop := false
	for i := range d.bands {
		if stop {
			return
		}
		d.bands[i].Scan(func(p *packet.Packet) bool {
			if !fn(p) {
				stop = true
				return false
			}
			return true
		})
	}
}
