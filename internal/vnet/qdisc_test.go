package vnet

import (
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// classedPkt builds a packet stamped with the given traffic class via the
// real classifier path (TOS bits).
func classedPkt(t testing.TB, id uint64, class nf.TrafficClass) *packet.Packet {
	t.Helper()
	dstPort := uint16(8080) // default class
	switch class {
	case nf.ClassLatencySensitive:
		dstPort = 80
	case nf.ClassBulk:
		dstPort = 55001
	}
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, byte(id%200+1)), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: uint16(20000 + id), DstPort: dstPort, Proto: packet.ProtoUDP,
	}
	p := &packet.Packet{
		ID: id, OrigID: id,
		Data: packet.BuildUDP(key, make([]byte, 200), packet.BuildOpts{}),
		Flow: key, FlowID: key.Hash64(),
	}
	cls := nf.PresetClassifier()
	cls.Process(0, p)
	if got := nf.ClassOf(p); got != class {
		t.Fatalf("test packet classed %v, want %v", got, class)
	}
	return p
}

func TestFIFOOrderAndBounds(t *testing.T) {
	f := NewFIFO(2)
	a := classedPkt(t, 1, nf.ClassDefault)
	b := classedPkt(t, 2, nf.ClassDefault)
	c := classedPkt(t, 3, nf.ClassDefault)
	if !f.Enqueue(a) || !f.Enqueue(b) {
		t.Fatal("admission failed")
	}
	if f.Enqueue(c) {
		t.Fatal("over-capacity admission")
	}
	if f.Len() != 2 || f.Bytes() != a.Size()+b.Size() {
		t.Fatalf("len=%d bytes=%d", f.Len(), f.Bytes())
	}
	if f.Dequeue() != a || f.Dequeue() != b || f.Dequeue() != nil {
		t.Fatal("FIFO order broken")
	}
	if f.Bytes() != 0 {
		t.Fatal("bytes not drained")
	}
}

func TestFIFOScanStopsEarly(t *testing.T) {
	f := NewFIFO(8)
	for i := uint64(1); i <= 4; i++ {
		f.Enqueue(classedPkt(t, i, nf.ClassDefault))
	}
	visited := 0
	f.Scan(func(p *packet.Packet) bool {
		visited++
		return p.ID != 2
	})
	if visited != 2 {
		t.Fatalf("scan visited %d, want 2", visited)
	}
}

func TestStrictPriorityOrdering(t *testing.T) {
	sp := NewStrictPriority(30)
	bulk := classedPkt(t, 1, nf.ClassBulk)
	def := classedPkt(t, 2, nf.ClassDefault)
	lat := classedPkt(t, 3, nf.ClassLatencySensitive)
	sp.Enqueue(bulk)
	sp.Enqueue(def)
	sp.Enqueue(lat)
	// Dequeue order: latency-sensitive, default, bulk — regardless of
	// arrival order.
	if sp.Dequeue() != lat || sp.Dequeue() != def || sp.Dequeue() != bulk {
		t.Fatal("strict priority order broken")
	}
}

func TestStrictPriorityPerBandCapacity(t *testing.T) {
	sp := NewStrictPriority(6) // 2 per band
	for i := uint64(0); i < 2; i++ {
		if !sp.Enqueue(classedPkt(t, i, nf.ClassBulk)) {
			t.Fatal("bulk admission failed")
		}
	}
	if sp.Enqueue(classedPkt(t, 9, nf.ClassBulk)) {
		t.Fatal("bulk band over capacity")
	}
	// The latency band is unaffected by bulk pressure.
	if !sp.Enqueue(classedPkt(t, 10, nf.ClassLatencySensitive)) {
		t.Fatal("latency band starved of admission")
	}
}

func TestDRRServesProportionally(t *testing.T) {
	d := NewDRR(300, [3]int{3000, 1500, 750})
	// Fill latency and bulk bands heavily.
	for i := uint64(0); i < 40; i++ {
		d.Enqueue(classedPkt(t, i, nf.ClassLatencySensitive))
		d.Enqueue(classedPkt(t, 100+i, nf.ClassBulk))
	}
	counts := map[int]int{}
	for i := 0; i < 40; i++ {
		p := d.Dequeue()
		if p == nil {
			t.Fatal("premature empty")
		}
		counts[classBand(p)]++
	}
	// Quanta 3000:750 => roughly 4:1 service ratio.
	if counts[0] < counts[2]*2 {
		t.Fatalf("DRR ratio off: latency %d vs bulk %d", counts[0], counts[2])
	}
	if counts[2] == 0 {
		t.Fatal("DRR starved bulk entirely")
	}
}

func TestDRRDrainsEverything(t *testing.T) {
	d := NewDRR(300, [3]int{0, 0, 0}) // defaults applied
	total := 0
	for i := uint64(0); i < 30; i++ {
		class := []nf.TrafficClass{nf.ClassLatencySensitive, nf.ClassDefault, nf.ClassBulk}[i%3]
		if d.Enqueue(classedPkt(t, i, class)) {
			total++
		}
	}
	got := 0
	for d.Dequeue() != nil {
		got++
	}
	if got != total {
		t.Fatalf("drained %d of %d", got, total)
	}
	if d.Len() != 0 || d.Bytes() != 0 {
		t.Fatal("residual state after drain")
	}
}

func TestLaneWithStrictPriorityProtectsLatencyClass(t *testing.T) {
	// A lane flooded with bulk packets: with FIFO the latency-sensitive
	// packet waits behind everything; with strict priority it jumps the
	// line.
	run := func(q Qdisc) sim.Duration {
		s := sim.New()
		var latDone sim.Duration
		cfg := LaneConfig{Qdisc: q, Chain: fixedChain(1000), QueueCap: 512}
		l := NewLane(0, s, cfg, xrand.New(1), func(p *packet.Packet, v packet.Verdict) {
			if nf.ClassOf(p) == nf.ClassLatencySensitive {
				latDone = p.QueueWait()
			}
		})
		for i := uint64(0); i < 50; i++ {
			l.Enqueue(classedPkt(t, i, nf.ClassBulk))
		}
		l.Enqueue(classedPkt(t, 99, nf.ClassLatencySensitive))
		s.Run()
		return latDone
	}
	fifoWait := run(NewFIFO(512))
	prioWait := run(NewStrictPriority(1536))
	if prioWait >= fifoWait/10 {
		t.Fatalf("priority wait %v not well below FIFO wait %v", prioWait, fifoWait)
	}
}

func TestLaneCancelQueuedThroughQdisc(t *testing.T) {
	s := sim.New()
	l := NewLane(0, s, LaneConfig{
		Qdisc: NewStrictPriority(30), Chain: fixedChain(1000), QueueCap: 30,
	}, xrand.New(1), nil)
	l.Enqueue(classedPkt(t, 1, nf.ClassDefault)) // serving
	l.Enqueue(classedPkt(t, 2, nf.ClassBulk))
	if !l.CancelQueued(2) {
		t.Fatal("cancel through priority qdisc failed")
	}
	s.Run()
	if l.Stats().CancelSkip != 1 {
		t.Fatal("cancelled packet not skipped")
	}
}
