package vnet

import "mpdp/internal/sim"

// SlowWindow is one scripted slow episode.
type SlowWindow struct {
	Start, End sim.Time
	Factor     float64
}

// ScriptedSlowdown applies an explicit schedule of slow windows — the
// deterministic counterpart of Interference, used by the adaptivity-
// timeline experiment where the burst must land at a known time.
type ScriptedSlowdown struct {
	Windows []SlowWindow
}

// Factor implements Slowdown.
func (s *ScriptedSlowdown) Factor(now sim.Time) float64 {
	for _, w := range s.Windows {
		if now >= w.Start && now < w.End && w.Factor > 1 {
			return w.Factor
		}
	}
	return 1
}

// ConstantSlowdown is a time-invariant service-time multiplier: the model
// of a permanently slower core (an efficiency core, a hyperthread sibling,
// a throttled socket) rather than a transient neighbor.
type ConstantSlowdown float64

// Factor implements Slowdown.
func (c ConstantSlowdown) Factor(now sim.Time) float64 {
	if c <= 1 {
		return 1
	}
	return float64(c)
}
