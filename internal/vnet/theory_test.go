package vnet

import (
	"math"
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/queueing"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/xrand"
)

// These tests validate the discrete-event substrate against closed-form
// queueing theory: a lane fed Poisson arrivals with a known service
// distribution must reproduce the analytic mean waiting time. If these
// break, nothing built on the simulator can be trusted.

// runLaneQueue drives one lane as the given queue and returns the measured
// mean wait (ns) and mean sojourn (ns).
func runLaneQueue(t *testing.T, svc func(*xrand.Rand) sim.Duration, meanGap sim.Duration, packets int) (wait, sojourn float64) {
	t.Helper()
	s := sim.New()
	svcRng := xrand.New(101)
	chain := nf.NewChain("svc", nf.Func{
		ElemName: "svc",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			return nf.Result{Verdict: packet.Pass, Cost: svc(svcRng)}
		},
	})
	var wq, w stats.Welford
	lane := NewLane(0, s, LaneConfig{
		QueueCap: 1 << 20, // effectively infinite: theory assumes no loss
		Chain:    chain,
	}, xrand.New(1), func(p *packet.Packet, v packet.Verdict) {
		wq.Add(float64(p.QueueWait()))
		w.Add(float64(p.Done - p.Enqueued))
	})

	arrRng := xrand.New(7)
	var at sim.Time
	for i := 0; i < packets; i++ {
		at += sim.Duration(arrRng.ExpFloat64(1 / float64(meanGap)))
		p := testPacket(uint64(i))
		s.At(at, func() { lane.Enqueue(p) })
	}
	s.Run()
	if lane.Stats().TailDrops != 0 {
		t.Fatal("drops in an 'infinite' queue run")
	}
	return wq.Mean(), w.Mean()
}

func TestLaneMatchesMM1(t *testing.T) {
	// λ = 1/2000ns, μ = 1/1000ns → ρ = 0.5, Wq = 1000ns, W = 2000ns.
	const meanSvc = 1000.0
	const meanGap = 2000.0
	q, err := queueing.NewMM1(1/meanGap, 1/meanSvc)
	if err != nil {
		t.Fatal(err)
	}
	wait, sojourn := runLaneQueue(t,
		func(r *xrand.Rand) sim.Duration {
			d := sim.Duration(r.ExpFloat64(1 / meanSvc))
			if d < 1 {
				d = 1
			}
			return d
		},
		meanGap, 300_000)
	if rel := math.Abs(wait-q.MeanWait()) / q.MeanWait(); rel > 0.05 {
		t.Fatalf("M/M/1 mean wait: sim %.1f vs theory %.1f (rel %.3f)", wait, q.MeanWait(), rel)
	}
	if rel := math.Abs(sojourn-q.MeanSojourn()) / q.MeanSojourn(); rel > 0.05 {
		t.Fatalf("M/M/1 sojourn: sim %.1f vs theory %.1f (rel %.3f)", sojourn, q.MeanSojourn(), rel)
	}
}

func TestLaneMatchesMD1(t *testing.T) {
	// Deterministic 1µs service at ρ=0.8: Wq = ρ/(2(1-ρ)) × E[S] = 2000ns.
	const meanSvc = 1000.0
	const meanGap = 1250.0
	q, err := queueing.MD1(1/meanGap, meanSvc)
	if err != nil {
		t.Fatal(err)
	}
	wait, _ := runLaneQueue(t,
		func(r *xrand.Rand) sim.Duration { return sim.Duration(meanSvc) },
		meanGap, 300_000)
	if rel := math.Abs(wait-q.MeanWait()) / q.MeanWait(); rel > 0.05 {
		t.Fatalf("M/D/1 mean wait: sim %.1f vs theory %.1f (rel %.3f)", wait, q.MeanWait(), rel)
	}
}

func TestLaneMatchesMG1HighVariance(t *testing.T) {
	// Bounded-Pareto-like heavy service: validate against P-K with the
	// distribution's *sampled* moments (exact moments of the clamped
	// sampler are awkward analytically; P-K only needs the two moments).
	const meanGap = 4000.0
	sampler := func(r *xrand.Rand) float64 {
		return r.BoundedPareto(1.5, 200, 20_000)
	}
	// Pre-measure moments on an independent stream.
	mr := xrand.New(55)
	var mom stats.Welford
	for i := 0; i < 2_000_000; i++ {
		mom.Add(sampler(mr))
	}
	q, err := queueing.NewMG1(1/meanGap, mom.Mean(), mom.Variance())
	if err != nil {
		t.Fatal(err)
	}
	wait, _ := runLaneQueue(t,
		func(r *xrand.Rand) sim.Duration { return sim.Duration(sampler(r)) },
		meanGap, 400_000)
	if rel := math.Abs(wait-q.MeanWait()) / q.MeanWait(); rel > 0.10 {
		t.Fatalf("M/G/1 mean wait: sim %.1f vs P-K %.1f (rel %.3f)", wait, q.MeanWait(), rel)
	}
}
