package vnet

import (
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// fixedChain returns a chain whose single element passes everything at a
// fixed cost.
func fixedChain(cost sim.Duration) *nf.Chain {
	return nf.NewChain("fixed", nf.Func{
		ElemName: "fixed",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			return nf.Result{Verdict: packet.Pass, Cost: cost}
		},
	})
}

func testPacket(id uint64) *packet.Packet {
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, byte(id%250+1)), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: uint16(10000 + id%1000), DstPort: 80, Proto: packet.ProtoUDP,
	}
	return &packet.Packet{
		ID: id, OrigID: id,
		Data: packet.BuildUDP(key, make([]byte, 100), packet.BuildOpts{}),
		Flow: key, FlowID: key.Hash64(),
	}
}

// newTestLane builds a deterministic lane (no jitter, no interference).
func newTestLane(s *sim.Simulator, cost sim.Duration, cap int, done DoneFunc) *Lane {
	cfg := LaneConfig{QueueCap: cap, Chain: fixedChain(cost), DispatchOverhead: 0, JitterSigma: 0}
	return NewLane(0, s, cfg, xrand.New(1), done)
}

func TestLaneServesFIFO(t *testing.T) {
	s := sim.New()
	var doneOrder []uint64
	l := newTestLane(s, 100, 16, func(p *packet.Packet, v packet.Verdict) {
		doneOrder = append(doneOrder, p.ID)
	})
	for i := uint64(1); i <= 5; i++ {
		if !l.Enqueue(testPacket(i)) {
			t.Fatal("enqueue rejected")
		}
	}
	s.Run()
	if len(doneOrder) != 5 {
		t.Fatalf("served %d, want 5", len(doneOrder))
	}
	for i, id := range doneOrder {
		if id != uint64(i+1) {
			t.Fatalf("not FIFO: %v", doneOrder)
		}
	}
	// 5 packets × 100ns back to back.
	if s.Now() != 500 {
		t.Fatalf("finished at %v, want 500", s.Now())
	}
}

func TestLaneTimestampsAndComponents(t *testing.T) {
	s := sim.New()
	var got *packet.Packet
	l := newTestLane(s, 100, 16, func(p *packet.Packet, v packet.Verdict) { got = p })
	p1 := testPacket(1)
	p2 := testPacket(2)
	l.Enqueue(p1)
	l.Enqueue(p2) // waits 100ns behind p1
	s.Run()
	if got != p2 {
		t.Fatal("last completion not p2")
	}
	if p2.Enqueued != 0 || p2.ServiceAt != 100 || p2.Done != 200 {
		t.Fatalf("timestamps: enq=%v svc=%v done=%v", p2.Enqueued, p2.ServiceAt, p2.Done)
	}
	if p2.QueueWait() != 100 || p2.ServiceTime() != 100 {
		t.Fatalf("components: wait=%v svc=%v", p2.QueueWait(), p2.ServiceTime())
	}
	if p1.QueueWait() != 0 {
		t.Fatalf("head packet waited %v", p1.QueueWait())
	}
}

func TestLaneTailDrop(t *testing.T) {
	s := sim.New()
	served := 0
	l := newTestLane(s, 1000, 2, func(p *packet.Packet, v packet.Verdict) { served++ })
	// 1 in service + 2 queued fit; the 4th is dropped.
	accepted := 0
	for i := uint64(1); i <= 4; i++ {
		if l.Enqueue(testPacket(i)) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3", accepted)
	}
	p := testPacket(9)
	l.Enqueue(p)
	if p.Dropped != packet.DropQueueFull {
		t.Fatal("drop reason not stamped")
	}
	s.Run()
	if served != 3 {
		t.Fatalf("served %d", served)
	}
	if st := l.Stats(); st.TailDrops != 2 || st.Enqueued != 3 || st.Served != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLaneQueueDepth(t *testing.T) {
	s := sim.New()
	l := newTestLane(s, 1000, 16, nil)
	if l.QueueDepth() != 0 {
		t.Fatal("fresh lane not empty")
	}
	l.Enqueue(testPacket(1)) // starts service immediately
	l.Enqueue(testPacket(2))
	if l.QueueDepth() != 2 {
		t.Fatalf("depth = %d, want 2 (1 serving + 1 queued)", l.QueueDepth())
	}
	if l.QueuedBytes() <= 0 {
		t.Fatal("queued bytes not counted")
	}
	s.Run()
	if l.QueueDepth() != 0 {
		t.Fatal("lane not drained")
	}
}

func TestLanePolicyDropReported(t *testing.T) {
	s := sim.New()
	dropChain := nf.NewChain("drop", nf.Func{
		ElemName: "deny",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			p.Dropped = packet.DropPolicy
			return nf.Result{Verdict: packet.Drop, Cost: 50}
		},
	})
	var verdicts []packet.Verdict
	cfg := LaneConfig{QueueCap: 4, Chain: dropChain}
	l := NewLane(0, s, cfg, xrand.New(1), func(p *packet.Packet, v packet.Verdict) {
		verdicts = append(verdicts, v)
	})
	l.Enqueue(testPacket(1))
	s.Run()
	if len(verdicts) != 1 || verdicts[0] != packet.Drop {
		t.Fatalf("verdicts %v", verdicts)
	}
}

func TestLaneCancelQueued(t *testing.T) {
	s := sim.New()
	var done []uint64
	l := newTestLane(s, 100, 16, func(p *packet.Packet, v packet.Verdict) {
		done = append(done, p.ID)
	})
	l.Enqueue(testPacket(1)) // in service
	l.Enqueue(testPacket(2))
	l.Enqueue(testPacket(3))
	if !l.CancelQueued(2) {
		t.Fatal("cancel of waiting packet failed")
	}
	if l.CancelQueued(1) {
		t.Fatal("cancelled the in-service packet")
	}
	if l.CancelQueued(99) {
		t.Fatal("cancelled a nonexistent packet")
	}
	s.Run()
	if len(done) != 2 || done[0] != 1 || done[1] != 3 {
		t.Fatalf("completions %v", done)
	}
	if l.Stats().CancelSkip != 1 {
		t.Fatal("cancel skip not counted")
	}
	// Cancelled packet costs no service time: 2 × 100ns.
	if s.Now() != 200 {
		t.Fatalf("finished at %v, want 200", s.Now())
	}
}

func TestLaneEstWait(t *testing.T) {
	s := sim.New()
	l := newTestLane(s, 1000, 16, nil)
	if l.EstWait(100) != 0 {
		t.Fatal("idle lane estimate nonzero")
	}
	l.Enqueue(testPacket(1)) // serving until t=1000
	l.Enqueue(testPacket(2)) // 1 queued
	est := l.EstWait(1000)
	// remaining 1000 of in-flight + 1×1000 queued estimate.
	if est != 2000 {
		t.Fatalf("EstWait = %v, want 2000", est)
	}
	s.RunUntil(600)
	if got := l.EstWait(1000); got != 1400 {
		t.Fatalf("EstWait mid-service = %v, want 1400", got)
	}
}

func TestLaneUtilization(t *testing.T) {
	s := sim.New()
	l := newTestLane(s, 100, 16, nil)
	for i := uint64(0); i < 5; i++ {
		l.Enqueue(testPacket(i))
	}
	s.Run() // busy 500 of 500
	if u := l.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1", u)
	}
	s.RunUntil(1000) // idle 500 more
	if u := l.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestLaneJitterVariesServiceTime(t *testing.T) {
	s := sim.New()
	var times []sim.Duration
	cfg := LaneConfig{QueueCap: 1024, Chain: fixedChain(1000), JitterSigma: 0.3}
	l := NewLane(0, s, cfg, xrand.New(7), func(p *packet.Packet, v packet.Verdict) {
		times = append(times, p.ServiceTime())
	})
	for i := uint64(0); i < 200; i++ {
		l.Enqueue(testPacket(i))
	}
	s.Run()
	distinct := make(map[sim.Duration]bool)
	var sum float64
	for _, d := range times {
		distinct[d] = true
		sum += float64(d)
	}
	if len(distinct) < 50 {
		t.Fatalf("jitter produced only %d distinct service times", len(distinct))
	}
	mean := sum / float64(len(times))
	if mean < 800 || mean > 1300 {
		t.Fatalf("jittered mean %v too far from 1000", mean)
	}
}

func TestLaneDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Duration {
		s := sim.New()
		var times []sim.Duration
		cfg := LaneConfig{QueueCap: 64, Chain: fixedChain(500), JitterSigma: 0.2}
		l := NewLane(0, s, cfg, xrand.New(99), func(p *packet.Packet, v packet.Verdict) {
			times = append(times, p.ServiceTime())
		})
		for i := uint64(0); i < 50; i++ {
			l.Enqueue(testPacket(i))
		}
		s.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLanePanicsOnBadConfig(t *testing.T) {
	s := sim.New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil chain did not panic")
			}
		}()
		NewLane(0, s, LaneConfig{}, xrand.New(1), nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil simulator did not panic")
			}
		}()
		NewLane(0, nil, LaneConfig{Chain: fixedChain(1)}, xrand.New(1), nil)
	}()
}

func TestInterferenceToggles(t *testing.T) {
	s := sim.New()
	cfg := InterferenceConfig{SlowFactor: 4, MeanOn: 100 * sim.Microsecond, MeanOff: 100 * sim.Microsecond}
	i := NewInterference(s, xrand.New(3), cfg)
	if i == nil {
		t.Fatal("interference unexpectedly nil")
	}
	s.RunUntil(100 * sim.Millisecond)
	if i.Episodes() < 100 {
		t.Fatalf("only %d episodes in 100ms with 200µs cycle", i.Episodes())
	}
	frac := i.ActiveFraction()
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("50%% duty cycle measured as %v", frac)
	}
}

func TestInterferenceFactor(t *testing.T) {
	s := sim.New()
	cfg := InterferenceConfig{SlowFactor: 7, MeanOn: sim.Second, MeanOff: sim.Second, StartActive: true}
	i := NewInterference(s, xrand.New(1), cfg)
	if f := i.Factor(0); f != 7 {
		t.Fatalf("active factor = %v", f)
	}
	if !i.Active() {
		t.Fatal("StartActive ignored")
	}
}

func TestInterferenceNilForZeroConfig(t *testing.T) {
	s := sim.New()
	if NewInterference(s, xrand.New(1), InterferenceConfig{SlowFactor: 1, MeanOn: 1, MeanOff: 1}) != nil {
		t.Fatal("factor 1.0 should yield nil")
	}
	if NewInterference(s, xrand.New(1), InterferenceConfig{SlowFactor: 4}) != nil {
		t.Fatal("zero durations should yield nil")
	}
	var nilI *Interference
	if nilI.Factor(0) != 1 || nilI.Active() || nilI.Episodes() != 0 || nilI.ActiveFraction() != 0 {
		t.Fatal("nil interference not a safe no-op")
	}
}

func TestInterferenceSlowsLane(t *testing.T) {
	// Same workload on a clean lane and an always-on interfered lane: the
	// interfered lane must take ~SlowFactor× longer.
	serveAll := func(intf *Interference, s *sim.Simulator) sim.Time {
		l := NewLane(0, s, LaneConfig{
			QueueCap: 1024, Chain: fixedChain(1000), Interference: intf,
		}, xrand.New(5), nil)
		for i := uint64(0); i < 100; i++ {
			l.Enqueue(testPacket(i))
		}
		// The interference process ticks forever; step only until the
		// lane has drained.
		for l.Stats().Served < 100 && s.Step() {
		}
		return s.Now()
	}
	sClean := sim.New()
	clean := serveAll(nil, sClean)

	sSlow := sim.New()
	// MeanOn enormous so it never toggles off during the run.
	intf := NewInterference(sSlow, xrand.New(5), InterferenceConfig{
		SlowFactor: 4, MeanOn: sim.Second * 1000, MeanOff: sim.Second, StartActive: true,
	})
	slow := serveAll(intf, sSlow)

	ratio := float64(slow) / float64(clean)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("interference ratio = %v, want ~4", ratio)
	}
}

func TestLaneWithPresetChainEndToEnd(t *testing.T) {
	s := sim.New()
	delivered := 0
	chain := nf.PresetChain(6)
	l := NewLane(0, s, DefaultLaneConfig(chain), xrand.New(11), func(p *packet.Packet, v packet.Verdict) {
		if v == packet.Pass {
			delivered++
		}
	})
	for i := uint64(0); i < 100; i++ {
		l.Enqueue(testPacket(i))
	}
	s.Run()
	if delivered != 100 {
		t.Fatalf("delivered %d/100 through preset chain", delivered)
	}
}

func BenchmarkLaneThroughput(b *testing.B) {
	s := sim.New()
	chain := nf.PresetChain(3)
	l := NewLane(0, s, DefaultLaneConfig(chain), xrand.New(1), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Enqueue(testPacket(uint64(i)))
		if i%256 == 255 {
			s.Run()
		}
	}
	s.Run()
}
