package workload

import (
	"mpdp/internal/packet"
	"mpdp/internal/xrand"
)

// CollisionFlows crafts n distinct five-tuples that all hash to the same
// RSS queue out of queues — the classic algorithmic-complexity attack on a
// static multi-queue data plane: an adversary who knows (or probes) the
// hash can concentrate arbitrarily many flows onto one core.
//
// The search just enumerates source ports and hosts, keeping tuples whose
// Toeplitz hash lands on the target queue; with the standard key, roughly
// 1/queues of candidates qualify, so the search is fast.
func CollisionFlows(rng *xrand.Rand, n, queues, targetQueue int) []packet.FlowKey {
	if n <= 0 || queues <= 0 || targetQueue < 0 || targetQueue >= queues {
		panic("workload: CollisionFlows arguments out of range")
	}
	out := make([]packet.FlowKey, 0, n)
	hostBase := byte(rng.Intn(100) + 1)
	for port := 1024; len(out) < n && port < 65535; port++ {
		key := packet.FlowKey{
			SrcIP:   packet.IP4(10, 0, 3, hostBase+byte(port%17)),
			DstIP:   packet.IP4(10, 1, 0, 5),
			SrcPort: uint16(port),
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		}
		if packet.RSSQueue(packet.DefaultRSSKey, key, queues) == targetQueue {
			out = append(out, key)
		}
	}
	if len(out) < n {
		panic("workload: CollisionFlows search space exhausted")
	}
	return out
}

// NewCollisionTraffic builds a Traffic generator whose entire flow pool
// collides onto one RSS queue (uniform popularity — the attack does not
// need elephants).
func NewCollisionTraffic(arrival Arrival, size SizeDist, rng *xrand.Rand, flows, queues, targetQueue int) *Traffic {
	t := NewTraffic(TrafficConfig{
		Arrival: arrival, Size: size,
		Flows: flows, FlowSkew: 0.01, // ~uniform
		BulkFraction: -1, // sentinel: pool is replaced below
		Rng:          rng,
	})
	t.pool = CollisionFlows(rng, flows, queues, targetQueue)
	return t
}
