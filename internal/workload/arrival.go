// Package workload generates the synthetic traffic of the experiment suite:
// packet arrival processes (constant, Poisson, ON/OFF bursts, MMPP), packet
// and flow size distributions (IMIX, bounded-Pareto, the canonical
// web-search and data-mining CDFs), an open-loop flow workload measuring
// flow completion times, and incast fan-in epochs.
//
// This substitutes for the paper's testbed traffic generators; burstiness
// and heavy tails — the properties that expose last-mile tail latency — are
// preserved by construction.
package workload

import (
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// Arrival yields successive inter-arrival gaps in virtual time.
type Arrival interface {
	// Next returns the gap before the next packet (>= 1ns).
	Next() sim.Duration
}

// CBR is a constant-bit-rate arrival process: fixed gaps.
type CBR struct{ Gap sim.Duration }

// Next implements Arrival.
func (c CBR) Next() sim.Duration {
	if c.Gap < 1 {
		return 1
	}
	return c.Gap
}

// Poisson produces exponentially distributed gaps with the given mean.
type Poisson struct {
	MeanGap sim.Duration
	Rng     *xrand.Rand
}

// NewPoisson builds a Poisson process with mean inter-arrival meanGap.
func NewPoisson(rng *xrand.Rand, meanGap sim.Duration) *Poisson {
	if meanGap <= 0 {
		panic("workload: NewPoisson with non-positive mean gap")
	}
	return &Poisson{MeanGap: meanGap, Rng: rng}
}

// Next implements Arrival.
func (p *Poisson) Next() sim.Duration {
	d := sim.Duration(p.Rng.ExpFloat64(1 / float64(p.MeanGap)))
	if d < 1 {
		d = 1
	}
	return d
}

// OnOff is a two-state burst process: during ON, packets arrive at the
// burst gap; OFF periods are silent. Episode lengths are exponential.
// The canonical model of micro-bursts in data-center traffic.
type OnOff struct {
	BurstGap sim.Duration // inter-arrival while ON
	MeanOn   sim.Duration
	MeanOff  sim.Duration
	Rng      *xrand.Rand

	inBurst   bool
	burstLeft sim.Duration
}

// NewOnOff builds a burst process. Mean rate is
// (MeanOn/(MeanOn+MeanOff)) / BurstGap packets per ns.
func NewOnOff(rng *xrand.Rand, burstGap, meanOn, meanOff sim.Duration) *OnOff {
	if burstGap <= 0 || meanOn <= 0 || meanOff < 0 {
		panic("workload: NewOnOff requires positive burstGap and meanOn")
	}
	return &OnOff{BurstGap: burstGap, MeanOn: meanOn, MeanOff: meanOff, Rng: rng}
}

// Next implements Arrival.
func (o *OnOff) Next() sim.Duration {
	if !o.inBurst {
		// Start a burst after an OFF gap.
		off := sim.Duration(0)
		if o.MeanOff > 0 {
			off = sim.Duration(o.Rng.ExpFloat64(1 / float64(o.MeanOff)))
		}
		o.inBurst = true
		o.burstLeft = sim.Duration(o.Rng.ExpFloat64(1 / float64(o.MeanOn)))
		if off < 1 {
			off = 1
		}
		return off
	}
	o.burstLeft -= o.BurstGap
	if o.burstLeft <= 0 {
		o.inBurst = false
	}
	return o.BurstGap
}

// MMPP2 is a two-state Markov-modulated Poisson process: each state has its
// own arrival rate; the process switches states with exponential holding
// times. Captures slowly varying load levels better than ON/OFF.
type MMPP2 struct {
	GapA, GapB   sim.Duration // mean inter-arrival per state
	HoldA, HoldB sim.Duration // mean state holding times
	Rng          *xrand.Rand

	inB      bool
	holdLeft sim.Duration
}

// NewMMPP2 builds the process starting in state A.
func NewMMPP2(rng *xrand.Rand, gapA, gapB, holdA, holdB sim.Duration) *MMPP2 {
	if gapA <= 0 || gapB <= 0 || holdA <= 0 || holdB <= 0 {
		panic("workload: NewMMPP2 requires positive parameters")
	}
	m := &MMPP2{GapA: gapA, GapB: gapB, HoldA: holdA, HoldB: holdB, Rng: rng}
	m.holdLeft = sim.Duration(rng.ExpFloat64(1 / float64(holdA)))
	return m
}

// Next implements Arrival.
func (m *MMPP2) Next() sim.Duration {
	gap := m.GapA
	if m.inB {
		gap = m.GapB
	}
	d := sim.Duration(m.Rng.ExpFloat64(1 / float64(gap)))
	if d < 1 {
		d = 1
	}
	m.holdLeft -= d
	if m.holdLeft <= 0 {
		m.inB = !m.inB
		hold := m.HoldA
		if m.inB {
			hold = m.HoldB
		}
		m.holdLeft = sim.Duration(m.Rng.ExpFloat64(1 / float64(hold)))
	}
	return d
}
