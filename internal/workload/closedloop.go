package workload

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/xrand"
)

// ClosedLoop models N RPC clients: each client sends one request (a short
// packet train), waits for it to be delivered through the data plane, then
// thinks for an exponentially distributed time and sends the next. Unlike
// the open-loop generators, offered load is self-clocking — a slow data
// plane automatically slows the clients — so the measured quantity is
// request latency at a fixed concurrency, the way RPC systems are actually
// benchmarked.
type ClosedLoop struct {
	cfg      ClosedLoopConfig
	sim      *sim.Simulator
	emit     func(*packet.Packet)
	clients  []*clClient
	byFlow   map[uint64]*clClient // live request flow -> client
	Latency  *stats.Hist          // per-request latency (first packet out -> last delivered)
	requests uint64
}

// ClosedLoopConfig parameterizes the client population.
type ClosedLoopConfig struct {
	// Clients is the concurrency level. Required.
	Clients int
	// RequestBytes is the request size (default 2000, a two-packet train).
	RequestBytes int
	// MeanThink is the mean think time between a response and the next
	// request (default 100 µs).
	MeanThink sim.Duration
	// MTU caps per-packet payload (default 1500-byte frames).
	MTU int
	// PacketGap paces a request's packets (default 500 ns).
	PacketGap sim.Duration
	// Rng drives think times. Required.
	Rng *xrand.Rand
}

type clClient struct {
	id        int
	key       packet.FlowKey
	flowID    uint64
	started   sim.Time
	remaining int
	seq       uint32
}

// NewClosedLoop builds the workload; Start launches the clients.
func NewClosedLoop(cfg ClosedLoopConfig) *ClosedLoop {
	if cfg.Clients <= 0 || cfg.Rng == nil {
		panic("workload: NewClosedLoop requires Clients and Rng")
	}
	if cfg.RequestBytes <= 0 {
		cfg.RequestBytes = 2000
	}
	if cfg.MeanThink <= 0 {
		cfg.MeanThink = 100 * sim.Microsecond
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.PacketGap <= 0 {
		cfg.PacketGap = 500 * sim.Nanosecond
	}
	return &ClosedLoop{cfg: cfg, byFlow: make(map[uint64]*clClient), Latency: stats.NewHist()}
}

// Start launches the clients on s, emitting packets via emit. Call
// OnDeliver from the data-plane sink to close the loop.
func (cl *ClosedLoop) Start(s *sim.Simulator, emit func(*packet.Packet)) {
	cl.sim = s
	cl.emit = emit
	for i := 0; i < cl.cfg.Clients; i++ {
		c := &clClient{id: i}
		cl.clients = append(cl.clients, c)
		// Stagger initial requests across one mean think time.
		delay := sim.Duration(cl.cfg.Rng.ExpFloat64(1 / float64(cl.cfg.MeanThink)))
		s.Schedule(delay, func() { cl.sendRequest(c) })
	}
}

// sendRequest emits one request train for client c.
func (cl *ClosedLoop) sendRequest(c *clClient) {
	c.seq++
	// A fresh five-tuple per request (new ephemeral source port), so each
	// request is its own flow through the data plane.
	c.key = packet.FlowKey{
		SrcIP:   packet.IP4(10, 0, 8, byte(c.id)),
		DstIP:   packet.IP4(10, 1, 0, 7),
		SrcPort: uint16(10000 + (uint32(c.id)*7919+c.seq)%50000),
		DstPort: 80,
		Proto:   packet.ProtoUDP,
	}
	c.flowID = c.key.Hash64()
	cl.byFlow[c.flowID] = c
	c.started = cl.sim.Now()

	maxPayload := cl.cfg.MTU - frameHeaderBytes
	n := (cl.cfg.RequestBytes + maxPayload - 1) / maxPayload
	if n < 1 {
		n = 1
	}
	c.remaining = n
	cl.requests++
	rem := cl.cfg.RequestBytes
	for i := 0; i < n; i++ {
		payload := maxPayload
		if rem < payload {
			payload = rem
		}
		if payload < 18 {
			payload = 18
		}
		rem -= payload
		frame := packet.BuildUDP(c.key, make([]byte, payload), packet.BuildOpts{})
		p := &packet.Packet{Data: frame, Flow: c.key, FlowID: c.flowID}
		if i == 0 {
			cl.emit(p)
		} else {
			cl.sim.Schedule(sim.Duration(i)*cl.cfg.PacketGap, func() { cl.emit(p) })
		}
	}
}

// OnDeliver closes the loop: when a client's last packet arrives, its
// request latency is recorded and the next request is scheduled after a
// think time.
func (cl *ClosedLoop) OnDeliver(p *packet.Packet) {
	c, ok := cl.byFlow[p.FlowID]
	if !ok || c.remaining == 0 {
		return
	}
	c.remaining--
	if c.remaining == 0 {
		delete(cl.byFlow, p.FlowID)
		cl.Latency.Record(int64(p.Delivered - c.started))
		think := sim.Duration(cl.cfg.Rng.ExpFloat64(1 / float64(cl.cfg.MeanThink)))
		cl.sim.Schedule(think, func() { cl.sendRequest(c) })
	}
}

// Requests returns the number of requests issued so far.
func (cl *ClosedLoop) Requests() uint64 { return cl.requests }

// Completed returns the number of requests fully delivered.
func (cl *ClosedLoop) Completed() uint64 { return cl.Latency.Count() }
