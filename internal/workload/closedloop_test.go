package workload

import (
	"testing"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// echoLoop wires a ClosedLoop to a trivial "data plane" that delivers every
// packet after the given delay.
func echoLoop(t *testing.T, cfg ClosedLoopConfig, delay sim.Duration, horizon sim.Duration) *ClosedLoop {
	t.Helper()
	s := sim.New()
	cl := NewClosedLoop(cfg)
	cl.Start(s, func(p *packet.Packet) {
		s.Schedule(delay, func() {
			p.Delivered = s.Now()
			cl.OnDeliver(p)
		})
	})
	s.RunUntil(horizon)
	return cl
}

func TestClosedLoopSelfClocking(t *testing.T) {
	cl := echoLoop(t, ClosedLoopConfig{
		Clients: 4, RequestBytes: 1000, MeanThink: 50 * sim.Microsecond,
		Rng: xrand.New(1),
	}, 10*sim.Microsecond, 10*sim.Millisecond)
	if cl.Completed() == 0 {
		t.Fatal("no requests completed")
	}
	// Each client cycles every ~think+delay: sanity-check the request
	// count is in the right ballpark (4 clients, ~60µs per cycle, 10ms).
	if cl.Completed() < 200 || cl.Completed() > 1200 {
		t.Fatalf("completed %d requests, expected a few hundred", cl.Completed())
	}
	// Request latency must be at least the delivery delay.
	if min := cl.Latency.Min(); min < 10_000 {
		t.Fatalf("min request latency %d below transport delay", min)
	}
}

func TestClosedLoopSlowPlaneSlowsClients(t *testing.T) {
	fast := echoLoop(t, ClosedLoopConfig{
		Clients: 2, MeanThink: 20 * sim.Microsecond, Rng: xrand.New(2),
	}, 5*sim.Microsecond, 5*sim.Millisecond)
	slow := echoLoop(t, ClosedLoopConfig{
		Clients: 2, MeanThink: 20 * sim.Microsecond, Rng: xrand.New(2),
	}, 500*sim.Microsecond, 5*sim.Millisecond)
	if slow.Completed() >= fast.Completed() {
		t.Fatalf("closed loop not self-clocking: slow %d >= fast %d",
			slow.Completed(), fast.Completed())
	}
}

func TestClosedLoopEachRequestNewFlow(t *testing.T) {
	s := sim.New()
	flows := make(map[uint64]bool)
	cl := NewClosedLoop(ClosedLoopConfig{
		Clients: 1, RequestBytes: 100, MeanThink: 10 * sim.Microsecond,
		Rng: xrand.New(3),
	})
	cl.Start(s, func(p *packet.Packet) {
		flows[p.FlowID] = true
		p.Delivered = s.Now()
		cl.OnDeliver(p)
	})
	s.RunUntil(sim.Millisecond)
	if len(flows) < 10 {
		t.Fatalf("only %d distinct request flows", len(flows))
	}
	if uint64(len(flows)) != cl.Requests() {
		t.Fatalf("flows %d != requests %d", len(flows), cl.Requests())
	}
}

func TestClosedLoopValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClosedLoop(ClosedLoopConfig{})
}
