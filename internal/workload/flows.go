package workload

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/xrand"
)

// FlowTracker measures flow completion times (FCT): it watches delivered
// packets, counts down each flow's outstanding packets, and records the
// FCT histogram split into short (< ShortCutoff bytes) and long flows.
// Flows that lose a packet never complete and are reported separately.
type FlowTracker struct {
	// ShortCutoff separates "mice" from "elephants" (default 100 KB).
	ShortCutoff int

	ShortFCT *stats.Hist // FCT of completed short flows (ns)
	LongFCT  *stats.Hist // FCT of completed long flows (ns)

	open      map[uint64]*openFlow
	started   uint64
	completed uint64
}

type openFlow struct {
	start     sim.Time
	remaining int
	bytes     int
}

// NewFlowTracker returns an empty tracker.
func NewFlowTracker() *FlowTracker {
	return &FlowTracker{
		ShortCutoff: 100_000,
		ShortFCT:    stats.NewHist(),
		LongFCT:     stats.NewHist(),
		open:        make(map[uint64]*openFlow),
	}
}

// Begin registers a flow of nPackets totaling bytes, started at start.
func (ft *FlowTracker) Begin(flowID uint64, nPackets, bytes int, start sim.Time) {
	ft.started++
	ft.open[flowID] = &openFlow{start: start, remaining: nPackets, bytes: bytes}
}

// OnDeliver is the data-plane sink hook: call it for every delivered packet.
func (ft *FlowTracker) OnDeliver(p *packet.Packet) {
	f, ok := ft.open[p.FlowID]
	if !ok {
		return
	}
	f.remaining--
	if f.remaining > 0 {
		return
	}
	delete(ft.open, p.FlowID)
	ft.completed++
	fct := int64(p.Delivered - f.start)
	if f.bytes < ft.ShortCutoff {
		ft.ShortFCT.Record(fct)
	} else {
		ft.LongFCT.Record(fct)
	}
}

// Started returns the number of flows begun.
func (ft *FlowTracker) Started() uint64 { return ft.started }

// Completed returns the number of flows fully delivered.
func (ft *FlowTracker) Completed() uint64 { return ft.completed }

// Incomplete returns flows still missing packets (lost or in flight).
func (ft *FlowTracker) Incomplete() int { return len(ft.open) }

// FlowConfig parameterizes the open-loop flow workload.
type FlowConfig struct {
	// MeanGap is the mean flow inter-arrival (Poisson). Required.
	MeanGap sim.Duration
	// Sizes yields flow sizes in bytes. Required.
	Sizes SizeDist
	// MTU caps per-packet payload (default 1500-byte frames).
	MTU int
	// PacketGap is the source pacing between a flow's packets
	// (default 1 µs ≈ a 10 GbE source with stack overheads).
	PacketGap sim.Duration
	// Rng drives arrivals and sizes. Required.
	Rng *xrand.Rand
}

// FlowWorkload emits flows as packet trains and tracks their FCT.
type FlowWorkload struct {
	cfg     FlowConfig
	Tracker *FlowTracker
	nextID  uint32
}

// NewFlowWorkload builds the workload.
func NewFlowWorkload(cfg FlowConfig) *FlowWorkload {
	if cfg.MeanGap <= 0 || cfg.Sizes == nil || cfg.Rng == nil {
		panic("workload: NewFlowWorkload requires MeanGap, Sizes and Rng")
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.PacketGap <= 0 {
		cfg.PacketGap = sim.Microsecond
	}
	return &FlowWorkload{cfg: cfg, Tracker: NewFlowTracker()}
}

// Run schedules flow arrivals on s until horizon; each flow's packets are
// paced at PacketGap and fed to emit.
func (fw *FlowWorkload) Run(s *sim.Simulator, emit func(*packet.Packet), horizon sim.Time) {
	var schedule func()
	schedule = func() {
		gap := sim.Duration(fw.cfg.Rng.ExpFloat64(1 / float64(fw.cfg.MeanGap)))
		if gap < 1 {
			gap = 1
		}
		if s.Now()+gap > horizon {
			return
		}
		s.Schedule(gap, func() {
			fw.startFlow(s, emit)
			schedule()
		})
	}
	schedule()
}

// startFlow launches one flow at the current time.
func (fw *FlowWorkload) startFlow(s *sim.Simulator, emit func(*packet.Packet)) {
	fw.nextID++
	id := fw.nextID
	key := packet.FlowKey{
		SrcIP:   packet.IP4(10, 0, byte(id>>8), byte(id)),
		DstIP:   packet.IP4(10, 1, 0, 5),
		SrcPort: uint16(20000 + id%40000),
		DstPort: 80,
		Proto:   packet.ProtoUDP,
	}
	bytes := fw.cfg.Sizes.Next()
	fw.emitTrain(s, emit, key, bytes)
}

// emitTrain packetizes one flow and schedules its packets.
func (fw *FlowWorkload) emitTrain(s *sim.Simulator, emit func(*packet.Packet), key packet.FlowKey, bytes int) {
	maxPayload := fw.cfg.MTU - frameHeaderBytes
	nPackets := (bytes + maxPayload - 1) / maxPayload
	if nPackets < 1 {
		nPackets = 1
	}
	flowID := key.Hash64()
	fw.Tracker.Begin(flowID, nPackets, bytes, s.Now())
	remaining := bytes
	for i := 0; i < nPackets; i++ {
		payload := maxPayload
		if remaining < payload {
			payload = remaining
		}
		if payload < 18 {
			payload = 18
		}
		remaining -= payload
		frame := packet.BuildUDP(key, make([]byte, payload), packet.BuildOpts{})
		p := &packet.Packet{Data: frame, Flow: key, FlowID: flowID}
		if i == 0 {
			emit(p)
			continue
		}
		s.Schedule(sim.Duration(i)*fw.cfg.PacketGap, func() { emit(p) })
	}
}

// IncastConfig parameterizes synchronized fan-in epochs: every Epoch, Fanin
// servers each send a Response-byte flow to the same frontend — the classic
// partition/aggregate pattern that produces incast bursts.
type IncastConfig struct {
	Fanin     int
	Response  int // bytes per server response
	Epoch     sim.Duration
	Epochs    int
	MTU       int
	PacketGap sim.Duration
	Rng       *xrand.Rand
}

// Incast drives synchronized response bursts and tracks per-response FCT.
type Incast struct {
	cfg     IncastConfig
	Tracker *FlowTracker
	epoch   uint32
}

// NewIncast builds the workload.
func NewIncast(cfg IncastConfig) *Incast {
	if cfg.Fanin <= 0 || cfg.Response <= 0 || cfg.Epoch <= 0 || cfg.Epochs <= 0 {
		panic("workload: NewIncast requires positive Fanin, Response, Epoch, Epochs")
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.PacketGap <= 0 {
		cfg.PacketGap = sim.Microsecond
	}
	return &Incast{cfg: cfg, Tracker: NewFlowTracker()}
}

// Run schedules all epochs on s.
func (ic *Incast) Run(s *sim.Simulator, emit func(*packet.Packet)) {
	fw := &FlowWorkload{
		cfg: FlowConfig{
			MeanGap: 1, Sizes: Fixed{Bytes: ic.cfg.Response},
			MTU: ic.cfg.MTU, PacketGap: ic.cfg.PacketGap, Rng: ic.cfg.Rng,
		},
		Tracker: ic.Tracker,
	}
	for e := 0; e < ic.cfg.Epochs; e++ {
		e := e
		s.Schedule(sim.Duration(e+1)*ic.cfg.Epoch, func() {
			ic.epoch++
			for srv := 0; srv < ic.cfg.Fanin; srv++ {
				key := packet.FlowKey{
					SrcIP:   packet.IP4(10, 0, byte(srv>>6), byte(srv<<2)+byte(e%4)),
					DstIP:   packet.IP4(10, 1, 0, 9),
					SrcPort: uint16(30000 + srv),
					DstPort: uint16(8000 + e%1000),
					Proto:   packet.ProtoUDP,
				}
				fw.emitTrain(s, emit, key, ic.cfg.Response)
			}
		})
	}
}
