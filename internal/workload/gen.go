package workload

import (
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// Traffic is the packet-level open-loop generator: an arrival process picks
// when, a Zipf-skewed flow pool picks who, and a size distribution picks
// how big. Every emitted packet is a real UDP frame.
type Traffic struct {
	cfg     TrafficConfig
	pool    []packet.FlowKey
	zipf    *xrand.Zipf
	emitted uint64
	bytes   uint64
}

// TrafficConfig parameterizes the generator.
type TrafficConfig struct {
	// Arrival yields inter-packet gaps. Required.
	Arrival Arrival
	// Size yields frame sizes in bytes. Required.
	Size SizeDist
	// Flows is the number of distinct five-tuples in the pool (default 64).
	Flows int
	// FlowSkew is the Zipf exponent of flow popularity (0 = uniform;
	// default 1.05, a realistic elephant/mice mix).
	FlowSkew float64
	// BulkFraction of pool flows get high destination ports, which the
	// preset classifier marks ClassBulk (default 0.25).
	BulkFraction float64
	// Rng drives flow selection. Required.
	Rng *xrand.Rand
}

// NewTraffic builds a generator and its flow pool.
func NewTraffic(cfg TrafficConfig) *Traffic {
	if cfg.Arrival == nil || cfg.Size == nil || cfg.Rng == nil {
		panic("workload: NewTraffic requires Arrival, Size and Rng")
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 64
	}
	if cfg.FlowSkew == 0 {
		cfg.FlowSkew = 1.05
	}
	if cfg.BulkFraction == 0 {
		cfg.BulkFraction = 0.25
	}
	t := &Traffic{cfg: cfg}
	bulkEvery := 0
	if cfg.BulkFraction > 0 {
		bulkEvery = int(1 / cfg.BulkFraction)
	}
	for i := 0; i < cfg.Flows; i++ {
		dstPort := uint16(80)
		// Bulk class goes to every bulkEvery-th rank *starting at rank 0*:
		// the Zipf elephant is bulk traffic (backups, analytics), while
		// latency-sensitive queries are the mice — the realistic mix.
		if bulkEvery > 0 && i%bulkEvery == 0 {
			dstPort = uint16(55000 + i%1000)
		}
		t.pool = append(t.pool, packet.FlowKey{
			SrcIP:   packet.IP4(10, 0, byte(i>>8), byte(i)),
			DstIP:   packet.IP4(10, 1, 0, 5),
			SrcPort: uint16(10000 + i%50000),
			DstPort: dstPort,
			Proto:   packet.ProtoUDP,
		})
	}
	t.zipf = xrand.NewZipf(cfg.Rng, cfg.Flows, cfg.FlowSkew)
	return t
}

// minFramePayload keeps frames at least Ethernet-minimum sized.
const frameHeaderBytes = packet.EthHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen

// NextPacket builds the next packet (without scheduling it).
func (t *Traffic) NextPacket() *packet.Packet {
	key := t.pool[t.zipf.Next()]
	size := t.cfg.Size.Next()
	payload := size - frameHeaderBytes
	if payload < 18 {
		payload = 18 // 60-byte minimum frame
	}
	if payload > 9000 {
		payload = 9000
	}
	frame := packet.BuildUDP(key, make([]byte, payload), packet.BuildOpts{})
	t.emitted++
	t.bytes += uint64(len(frame))
	return &packet.Packet{Data: frame, Flow: key, FlowID: key.Hash64()}
}

// Run schedules arrivals on s, calling emit for each packet, until horizon.
func (t *Traffic) Run(s *sim.Simulator, emit func(*packet.Packet), horizon sim.Time) {
	var schedule func()
	schedule = func() {
		gap := t.cfg.Arrival.Next()
		next := s.Now() + gap
		if next > horizon {
			return
		}
		s.Schedule(gap, func() {
			emit(t.NextPacket())
			schedule()
		})
	}
	schedule()
}

// Emitted returns packets and bytes generated so far.
func (t *Traffic) Emitted() (pkts, bytes uint64) { return t.emitted, t.bytes }

// Pool returns the flow pool (shared; read-only).
func (t *Traffic) Pool() []packet.FlowKey { return t.pool }

// MeanServiceCost estimates the mean per-packet chain cost for a given
// chain and this generator's size distribution, by probing the chain with
// representative packets. Experiments use it to convert a target
// utilization into an arrival rate.
func MeanServiceCost(chain *nf.Chain, size SizeDist, rng *xrand.Rand, samples int) sim.Duration {
	if samples <= 0 {
		samples = 200
	}
	probe := NewTraffic(TrafficConfig{
		Arrival: CBR{Gap: 1},
		Size:    size,
		Flows:   32,
		Rng:     rng,
	})
	var total sim.Duration
	for i := 0; i < samples; i++ {
		p := probe.NextPacket()
		r := chain.Process(0, p)
		total += r.Cost
	}
	return total / sim.Duration(samples)
}
