package workload

import (
	"math"

	"mpdp/internal/xrand"
)

// SizeDist yields packet or flow sizes in bytes.
type SizeDist interface {
	// Next returns the next size in bytes (>= 1).
	Next() int
	// Mean returns the distribution's mean, for load calibration.
	Mean() float64
}

// Fixed always returns the same size.
type Fixed struct{ Bytes int }

// Next implements SizeDist.
func (f Fixed) Next() int { return f.Bytes }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f.Bytes) }

// IMIX is the classic Internet packet-size mix: 7 parts 64 B, 4 parts
// 576 B, 1 part 1500 B (mean ≈ 340 B). The suite's default per-packet
// size distribution.
type IMIX struct{ Rng *xrand.Rand }

// Next implements SizeDist.
func (m IMIX) Next() int {
	switch r := m.Rng.Intn(12); {
	case r < 7:
		return 64
	case r < 11:
		return 576
	default:
		return 1500
	}
}

// Mean implements SizeDist.
func (m IMIX) Mean() float64 { return (7*64.0 + 4*576 + 1*1500) / 12 }

// BoundedPareto draws sizes from a truncated Pareto: the standard model of
// heavy-tailed flow sizes.
type BoundedPareto struct {
	Alpha  float64
	Lo, Hi int
	Rng    *xrand.Rand
}

// Next implements SizeDist.
func (b BoundedPareto) Next() int {
	return int(b.Rng.BoundedPareto(b.Alpha, float64(b.Lo), float64(b.Hi)))
}

// Mean implements SizeDist: the closed-form truncated-Pareto mean.
func (b BoundedPareto) Mean() float64 {
	a, l, h := b.Alpha, float64(b.Lo), float64(b.Hi)
	if a == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	return math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// Empirical wraps xrand.Empirical as a SizeDist.
type Empirical struct{ E *xrand.Empirical }

// Next implements SizeDist.
func (e Empirical) Next() int {
	v := int(e.E.Next())
	if v < 1 {
		v = 1
	}
	return v
}

// Mean implements SizeDist.
func (e Empirical) Mean() float64 { return e.E.Mean() }

// WebSearch returns the canonical web-search flow-size distribution
// (approximating the CDF published with DCTCP): mostly short query
// responses with a heavy tail of multi-megabyte flows.
func WebSearch(rng *xrand.Rand) Empirical {
	values := []float64{
		1e3, 2e3, 3e3, 5e3, 7e3, 10e3, 20e3, 30e3, 50e3,
		80e3, 200e3, 1e6, 2e6, 5e6, 10e6, 30e6,
	}
	probs := []float64{
		0, 0.10, 0.20, 0.30, 0.40, 0.49, 0.60, 0.70, 0.75,
		0.80, 0.85, 0.90, 0.95, 0.98, 0.99, 1.0,
	}
	return Empirical{E: xrand.NewEmpirical(rng, values, probs)}
}

// DataMining returns the canonical data-mining flow-size distribution
// (approximating the CDF published with VL2): half the flows under 1 KB,
// with a very heavy elephant tail.
func DataMining(rng *xrand.Rand) Empirical {
	values := []float64{
		100, 300, 1e3, 2e3, 10e3, 100e3, 1e6, 10e6, 100e6,
	}
	probs := []float64{
		0, 0.30, 0.50, 0.60, 0.80, 0.90, 0.95, 0.99, 1.0,
	}
	return Empirical{E: xrand.NewEmpirical(rng, values, probs)}
}
