package workload

import (
	"math"
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

func TestCBRGaps(t *testing.T) {
	c := CBR{Gap: 100}
	for i := 0; i < 10; i++ {
		if c.Next() != 100 {
			t.Fatal("CBR gap varies")
		}
	}
	if (CBR{Gap: 0}).Next() != 1 {
		t.Fatal("CBR zero gap not clamped")
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := NewPoisson(xrand.New(1), 1000)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 1 {
			t.Fatal("gap below 1ns")
		}
		sum += float64(g)
	}
	mean := sum / n
	if math.Abs(mean-1000)/1000 > 0.02 {
		t.Fatalf("Poisson mean gap %v, want ~1000", mean)
	}
}

func TestPoissonInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPoisson(xrand.New(1), 0)
}

func TestOnOffBurstiness(t *testing.T) {
	// Compare squared coefficient of variation: ON/OFF must be burstier
	// than Poisson at the same mean rate.
	measure := func(a Arrival, n int) (mean, cv2 float64) {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := float64(a.Next())
			sum += g
			sumSq += g * g
		}
		mean = sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		return mean, variance / (mean * mean)
	}
	onoff := NewOnOff(xrand.New(2), 100, 10_000, 90_000)
	_, cv2Burst := measure(onoff, 200000)
	pois := NewPoisson(xrand.New(3), 1000)
	_, cv2Pois := measure(pois, 200000)
	if cv2Burst <= cv2Pois*2 {
		t.Fatalf("ON/OFF cv² %v not clearly burstier than Poisson %v", cv2Burst, cv2Pois)
	}
}

func TestOnOffMeanRate(t *testing.T) {
	// Duty cycle 10%, burst gap 100ns -> mean gap ~1000ns.
	o := NewOnOff(xrand.New(4), 100, 10_000, 90_000)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(o.Next())
	}
	mean := sum / n
	if mean < 800 || mean > 1300 {
		t.Fatalf("ON/OFF mean gap %v, want ~1000", mean)
	}
}

func TestMMPP2SwitchesRates(t *testing.T) {
	m := NewMMPP2(xrand.New(5), 100, 10000, 1_000_000, 1_000_000)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(m.Next())
	}
	mean := sum / n
	// Time-weighted mean gap lies between the two state gaps and, with
	// equal holding times, close to the slow state's contribution.
	if mean <= 100 || mean >= 10000 {
		t.Fatalf("MMPP2 mean gap %v outside (100,10000)", mean)
	}
}

func TestFixedAndIMIX(t *testing.T) {
	f := Fixed{Bytes: 500}
	if f.Next() != 500 || f.Mean() != 500 {
		t.Fatal("Fixed broken")
	}
	m := IMIX{Rng: xrand.New(6)}
	var sum float64
	const n = 200000
	sizes := map[int]int{}
	for i := 0; i < n; i++ {
		v := m.Next()
		sizes[v]++
		sum += float64(v)
	}
	if len(sizes) != 3 {
		t.Fatalf("IMIX produced %d sizes", len(sizes))
	}
	if math.Abs(sum/n-m.Mean())/m.Mean() > 0.02 {
		t.Fatalf("IMIX sample mean %v vs analytic %v", sum/n, m.Mean())
	}
}

func TestBoundedParetoMeanMatches(t *testing.T) {
	b := BoundedPareto{Alpha: 1.3, Lo: 100, Hi: 100000, Rng: xrand.New(7)}
	var sum float64
	const n = 500000
	for i := 0; i < n; i++ {
		v := b.Next()
		if v < 100 || v > 100000 {
			t.Fatalf("sample %d out of bounds", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-b.Mean())/b.Mean() > 0.05 {
		t.Fatalf("sampled mean %v vs analytic %v", mean, b.Mean())
	}
}

func TestWebSearchAndDataMiningShapes(t *testing.T) {
	ws := WebSearch(xrand.New(8))
	dm := DataMining(xrand.New(9))
	const n = 100000
	wsShort, dmShort := 0, 0
	for i := 0; i < n; i++ {
		if ws.Next() <= 10_000 {
			wsShort++
		}
		if dm.Next() <= 1_000 {
			dmShort++
		}
	}
	// Web search: ~49% of flows <= 10KB. Data mining: ~50% <= 1KB.
	if f := float64(wsShort) / n; f < 0.40 || f > 0.60 {
		t.Fatalf("web-search short fraction %v", f)
	}
	if f := float64(dmShort) / n; f < 0.40 || f > 0.60 {
		t.Fatalf("data-mining short fraction %v", f)
	}
	// Data mining has the heavier tail: larger mean.
	if dm.Mean() <= ws.Mean() {
		t.Fatalf("data-mining mean %v not above web-search %v", dm.Mean(), ws.Mean())
	}
}

func TestTrafficEmitsValidFrames(t *testing.T) {
	tr := NewTraffic(TrafficConfig{
		Arrival: CBR{Gap: 100},
		Size:    IMIX{Rng: xrand.New(10)},
		Flows:   32,
		Rng:     xrand.New(11),
	})
	for i := 0; i < 200; i++ {
		p := tr.NextPacket()
		pr, err := packet.ParseFrame(p.Data)
		if err != nil || !pr.HasUDP {
			t.Fatalf("invalid frame: %v", err)
		}
		if pr.FlowKey() != p.Flow {
			t.Fatal("flow key mismatch")
		}
		if p.FlowID != p.Flow.Hash64() {
			t.Fatal("FlowID not set")
		}
	}
	pkts, bytes := tr.Emitted()
	if pkts != 200 || bytes == 0 {
		t.Fatalf("emitted %d/%d", pkts, bytes)
	}
}

func TestTrafficZipfSkew(t *testing.T) {
	tr := NewTraffic(TrafficConfig{
		Arrival:  CBR{Gap: 100},
		Size:     Fixed{Bytes: 200},
		Flows:    50,
		FlowSkew: 1.2,
		Rng:      xrand.New(12),
	})
	counts := make(map[packet.FlowKey]int)
	for i := 0; i < 20000; i++ {
		counts[tr.NextPacket().Flow]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 20000*0.1 {
		t.Fatalf("no elephant flow under Zipf skew (max %d)", max)
	}
}

func TestTrafficBulkFraction(t *testing.T) {
	tr := NewTraffic(TrafficConfig{
		Arrival: CBR{Gap: 1}, Size: Fixed{Bytes: 100}, Flows: 100,
		BulkFraction: 0.25, Rng: xrand.New(13),
	})
	bulk := 0
	for _, k := range tr.Pool() {
		if k.DstPort >= 50000 {
			bulk++
		}
	}
	if bulk != 25 {
		t.Fatalf("bulk flows %d/100, want 25", bulk)
	}
}

func TestTrafficRunHorizon(t *testing.T) {
	s := sim.New()
	tr := NewTraffic(TrafficConfig{
		Arrival: CBR{Gap: 1000},
		Size:    Fixed{Bytes: 200},
		Flows:   8,
		Rng:     xrand.New(14),
	})
	var times []sim.Time
	tr.Run(s, func(p *packet.Packet) { times = append(times, s.Now()) }, 10_000)
	s.Run()
	if len(times) != 10 {
		t.Fatalf("emitted %d packets in 10µs at 1/µs", len(times))
	}
	for _, tm := range times {
		if tm > 10_000 {
			t.Fatal("emission after horizon")
		}
	}
}

func TestTrafficRequiredFieldsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on missing fields")
		}
	}()
	NewTraffic(TrafficConfig{})
}

func TestMeanServiceCostPositiveAndScales(t *testing.T) {
	rng := xrand.New(15)
	short := MeanServiceCost(nf.PresetChain(1), Fixed{Bytes: 128}, rng, 100)
	long := MeanServiceCost(nf.PresetChain(6), Fixed{Bytes: 1400}, rng, 100)
	if short <= 0 {
		t.Fatal("non-positive cost estimate")
	}
	if long <= short {
		t.Fatalf("chain-6 jumbo cost %v not above chain-1 small %v", long, short)
	}
}

func TestFlowTrackerFCT(t *testing.T) {
	ft := NewFlowTracker()
	ft.Begin(7, 3, 50_000, 1000)
	mk := func(seq uint64, delivered sim.Time) *packet.Packet {
		return &packet.Packet{FlowID: 7, Seq: seq, Delivered: delivered}
	}
	ft.OnDeliver(mk(0, 2000))
	ft.OnDeliver(mk(1, 3000))
	if ft.Completed() != 0 {
		t.Fatal("completed early")
	}
	ft.OnDeliver(mk(2, 5000))
	if ft.Completed() != 1 || ft.Incomplete() != 0 {
		t.Fatalf("completed=%d incomplete=%d", ft.Completed(), ft.Incomplete())
	}
	// 50KB < 100KB cutoff -> short flow; FCT = 5000-1000.
	if ft.ShortFCT.Count() != 1 || ft.ShortFCT.Max() != 4000 {
		t.Fatalf("short FCT hist: n=%d max=%d", ft.ShortFCT.Count(), ft.ShortFCT.Max())
	}
	if ft.LongFCT.Count() != 0 {
		t.Fatal("long hist polluted")
	}
}

func TestFlowTrackerIgnoresUnknownFlows(t *testing.T) {
	ft := NewFlowTracker()
	ft.OnDeliver(&packet.Packet{FlowID: 99, Delivered: 10})
	if ft.Completed() != 0 {
		t.Fatal("unknown flow completed")
	}
}

func TestFlowWorkloadPacketizes(t *testing.T) {
	s := sim.New()
	fw := NewFlowWorkload(FlowConfig{
		MeanGap: 100 * sim.Microsecond,
		Sizes:   Fixed{Bytes: 4000}, // ~3 MTU packets
		Rng:     xrand.New(16),
	})
	var pkts []*packet.Packet
	fw.Run(s, func(p *packet.Packet) { pkts = append(pkts, p) }, 2*sim.Millisecond)
	s.Run()
	if fw.Tracker.Started() == 0 {
		t.Fatal("no flows started")
	}
	perFlow := make(map[uint64]int)
	for _, p := range pkts {
		perFlow[p.FlowID]++
	}
	for id, n := range perFlow {
		if n != 3 {
			t.Fatalf("flow %d has %d packets, want 3 for 4000B", id, n)
		}
	}
}

func TestFlowWorkloadEndToEndFCT(t *testing.T) {
	s := sim.New()
	fw := NewFlowWorkload(FlowConfig{
		MeanGap: 50 * sim.Microsecond,
		Sizes:   Fixed{Bytes: 3000},
		Rng:     xrand.New(17),
	})
	// "Deliver" every packet 10µs after emission.
	fw.Run(s, func(p *packet.Packet) {
		deliverAt := s.Now() + 10*sim.Microsecond
		s.Schedule(10*sim.Microsecond, func() {
			p.Delivered = deliverAt
			fw.Tracker.OnDeliver(p)
		})
	}, 2*sim.Millisecond)
	s.Run()
	if fw.Tracker.Completed() == 0 {
		t.Fatal("no flows completed")
	}
	if fw.Tracker.Completed() != fw.Tracker.Started() {
		t.Fatalf("completed %d of %d", fw.Tracker.Completed(), fw.Tracker.Started())
	}
	// FCT must be at least the last packet's pacing offset + delivery lag.
	if min := fw.Tracker.ShortFCT.Min(); min < 10*1000 {
		t.Fatalf("implausible min FCT %d", min)
	}
}

func TestIncastEpochs(t *testing.T) {
	s := sim.New()
	ic := NewIncast(IncastConfig{
		Fanin: 8, Response: 2000, Epoch: sim.Millisecond, Epochs: 3,
		Rng: xrand.New(18),
	})
	count := 0
	var firstBurst sim.Time
	ic.Run(s, func(p *packet.Packet) {
		if count == 0 {
			firstBurst = s.Now()
		}
		count++
		p.Delivered = s.Now()
		ic.Tracker.OnDeliver(p)
	})
	s.Run()
	if ic.Tracker.Started() != 24 {
		t.Fatalf("started %d flows, want 8×3", ic.Tracker.Started())
	}
	if firstBurst != sim.Millisecond {
		t.Fatalf("first epoch at %v", firstBurst)
	}
	// 2000B -> 2 packets per response.
	if count != 48 {
		t.Fatalf("emitted %d packets, want 48", count)
	}
}

func TestIncastDistinctFlowKeys(t *testing.T) {
	s := sim.New()
	ic := NewIncast(IncastConfig{
		Fanin: 16, Response: 1000, Epoch: sim.Millisecond, Epochs: 2,
		Rng: xrand.New(19),
	})
	flows := make(map[uint64]bool)
	ic.Run(s, func(p *packet.Packet) { flows[p.FlowID] = true })
	s.Run()
	if len(flows) != 32 {
		t.Fatalf("distinct flows %d, want 32", len(flows))
	}
}

func TestIncastInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewIncast(IncastConfig{})
}

func TestCollisionFlowsAllCollide(t *testing.T) {
	rng := xrand.New(21)
	flows := CollisionFlows(rng, 50, 4, 2)
	if len(flows) != 50 {
		t.Fatalf("got %d flows", len(flows))
	}
	seen := make(map[packet.FlowKey]bool)
	for _, k := range flows {
		if packet.RSSQueue(packet.DefaultRSSKey, k, 4) != 2 {
			t.Fatalf("flow %v does not hash to queue 2", k)
		}
		if seen[k] {
			t.Fatal("duplicate flow in collision set")
		}
		seen[k] = true
	}
}

func TestCollisionFlowsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad args accepted")
		}
	}()
	CollisionFlows(xrand.New(1), 10, 4, 9)
}

func TestNewCollisionTrafficPool(t *testing.T) {
	rng := xrand.New(22)
	tr := NewCollisionTraffic(CBR{Gap: 100}, Fixed{Bytes: 200}, rng, 32, 8, 5)
	for i := 0; i < 200; i++ {
		p := tr.NextPacket()
		if packet.RSSQueue(packet.DefaultRSSKey, p.Flow, 8) != 5 {
			t.Fatal("generated packet escapes the target queue")
		}
	}
}
