// Package xrand provides a small, fast, deterministic random number
// generator and the probability distributions used throughout the MPDP
// simulator.
//
// The simulator requires bit-reproducible runs for a given seed across
// platforms and Go releases, so it cannot depend on math/rand's unspecified
// stream stability. xrand implements an explicit PCG-XSH-RR 64/32 generator
// seeded through SplitMix64, plus exponential, Pareto, log-normal, Weibull,
// Zipf, normal and empirical-CDF samplers built on top of it.
//
// A Rand is not safe for concurrent use; give each simulated entity its own
// stream via Split, which derives an independent generator deterministically.
package xrand

import "math"

// Rand is a deterministic pseudo-random generator (PCG-XSH-RR 64/32).
// The zero value is not usable; construct with New.
type Rand struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand seeds into well-distributed initial states.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	sm := seed
	r := &Rand{}
	r.state = splitMix64(&sm)
	r.inc = splitMix64(&sm) | 1 // stream selector must be odd
	// Advance once so the first output depends on both state words.
	r.Uint32()
	return r
}

// Split derives a new independent generator from r deterministically.
// The derived stream is decorrelated from r's future output.
func (r *Rand) Split() *Rand {
	seed := uint64(r.Uint32())<<32 | uint64(r.Uint32())
	return New(seed ^ 0xa0761d6478bd642f)
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // negligible modulo bias for simulation use
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: ExpFloat64 with non-positive rate")
	}
	// Use 1-u to avoid log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Pareto returns a Pareto(shape alpha, scale xm) sample: xm * U^(-1/alpha).
// Heavy-tailed for alpha <= 2; the canonical model of flow-size skew.
func (r *Rand) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("xrand: Pareto requires positive alpha and xm")
	}
	return xm * math.Pow(1-r.Float64(), -1/alpha)
}

// BoundedPareto returns a Pareto(alpha) sample truncated to [lo, hi] by
// inverse-CDF sampling, preserving the tail shape inside the bounds.
func (r *Rand) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("xrand: BoundedPareto requires alpha>0 and 0<lo<hi")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Rand) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(Normal(mu, sigma)); the standard model of service
// time jitter with occasional large stragglers.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Weibull returns a Weibull(shape k, scale lambda) sample.
func (r *Rand) Weibull(k, lambda float64) float64 {
	if k <= 0 || lambda <= 0 {
		panic("xrand: Weibull requires positive k and lambda")
	}
	return lambda * math.Pow(-math.Log(1-r.Float64()), 1/k)
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success. It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
