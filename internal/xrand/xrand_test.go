package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must not replicate the parent's continuation.
	parent := make([]uint64, 50)
	for i := range parent {
		parent[i] = a.Uint64()
	}
	matches := 0
	for i := 0; i < 50; i++ {
		if c.Uint64() == parent[i] {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split stream matched parent %d/50 times", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values, want 10", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(6)
	const rate = 2.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(rate)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(7)
	const alpha, xm = 1.5, 1.0
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto sample %v below scale %v", v, xm)
		}
		if v > 10 {
			count++
		}
	}
	// P(X > 10) = (xm/10)^alpha = 10^-1.5 ~= 0.0316
	frac := float64(count) / n
	if math.Abs(frac-0.0316) > 0.01 {
		t.Fatalf("Pareto tail fraction = %v, want ~0.0316", frac)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	r := New(8)
	for i := 0; i < 50000; i++ {
		v := r.BoundedPareto(1.2, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("BoundedPareto out of [10,1000]: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	const mean, stddev = 5.0, 2.0
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(m-mean) > 0.05 || math.Abs(sd-stddev) > 0.05 {
		t.Fatalf("normal moments mean=%v sd=%v, want %v and %v", m, sd, mean, stddev)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	r := New(11)
	// Weibull(k=1, lambda) is exponential with mean lambda.
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("Weibull(1,3) mean = %v, want ~3", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(12)
	const p = 0.25
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean number of failures
	if mean := sum / n; math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	for trial := 0; trial < 100; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("Perm produced invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(15)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	// With s=1, P(rank 0) = 1/H_100 ~ 0.1928.
	frac := float64(counts[0]) / n
	if math.Abs(frac-0.1928) > 0.02 {
		t.Fatalf("Zipf rank-0 frequency = %v, want ~0.19", frac)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.1) > 0.01 {
			t.Fatalf("Zipf(s=0) rank %d frequency %v, want ~0.1", i, float64(c)/n)
		}
	}
}

func TestEmpiricalBounds(t *testing.T) {
	r := New(18)
	e := NewEmpirical(r, []float64{100, 1000, 10000}, []float64{0.5, 0.9, 1.0})
	for i := 0; i < 50000; i++ {
		v := e.Next()
		if v < 100 || v > 10000 {
			t.Fatalf("Empirical sample %v out of [100,10000]", v)
		}
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	r := New(19)
	e := NewEmpirical(r, []float64{0, 10, 100}, []float64{0, 0.5, 1.0})
	below10 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if e.Next() <= 10 {
			below10++
		}
	}
	if frac := float64(below10) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("P(X<=10) = %v, want ~0.5", frac)
	}
}

func TestEmpiricalMean(t *testing.T) {
	r := New(20)
	e := NewEmpirical(r, []float64{0, 10}, []float64{0, 1})
	// Uniform on [0,10]: mean 5.
	if m := e.Mean(); math.Abs(m-5) > 1e-9 {
		t.Fatalf("analytic mean = %v, want 5", m)
	}
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += e.Next()
	}
	if m := sum / n; math.Abs(m-5) > 0.05 {
		t.Fatalf("sampled mean = %v, want ~5", m)
	}
}

func TestEmpiricalRejectsMalformed(t *testing.T) {
	r := New(21)
	cases := []struct {
		values, probs []float64
	}{
		{[]float64{1}, []float64{1}},                 // too short
		{[]float64{1, 2}, []float64{0.5, 0.9}},       // doesn't end at 1
		{[]float64{2, 1}, []float64{0.5, 1}},         // decreasing values
		{[]float64{1, 2, 3}, []float64{0.9, 0.5, 1}}, // decreasing probs
		{[]float64{1, 2, 3}, []float64{0.5, 1}},      // length mismatch
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: malformed input did not panic", i)
				}
			}()
			NewEmpirical(r, c.values, c.probs)
		}()
	}
}

// Property: Float64 is always in [0,1) regardless of seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed yields same first value; Perm is always a permutation.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Uint64() == New(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.ExpFloat64(1)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
