package xrand

import "math"

// Zipf samples ranks 1..N with probability proportional to 1/rank^s.
// It precomputes the CDF once, so sampling is O(log N) via binary search.
// Used to model skewed flow popularity (a few elephant destinations).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0 drawing
// randomness from r. It panics if n <= 0 or s < 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, r: r}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns a rank in [0, N) with Zipfian probability (rank 0 most likely).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Empirical samples from a piecewise-linear inverse CDF given as
// (value, cumulative-probability) breakpoints. This is how the canonical
// data-center flow-size distributions (web-search, data-mining) are encoded.
type Empirical struct {
	values []float64
	probs  []float64
	r      *Rand
}

// NewEmpirical builds an empirical sampler. probs must start at 0 or have an
// implicit 0 origin, be non-decreasing, and end at 1; values must be
// non-decreasing and the same length as probs. It panics on malformed input.
func NewEmpirical(r *Rand, values, probs []float64) *Empirical {
	if len(values) != len(probs) || len(values) < 2 {
		panic("xrand: NewEmpirical needs >= 2 matching breakpoints")
	}
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] || probs[i] < probs[i-1] {
			panic("xrand: NewEmpirical breakpoints must be non-decreasing")
		}
	}
	if probs[len(probs)-1] != 1 {
		panic("xrand: NewEmpirical probs must end at 1")
	}
	v := make([]float64, len(values))
	p := make([]float64, len(probs))
	copy(v, values)
	copy(p, probs)
	return &Empirical{values: v, probs: p, r: r}
}

// Next returns a sample by inverting the piecewise-linear CDF.
func (e *Empirical) Next() float64 {
	u := e.r.Float64()
	// Find the first breakpoint with cumulative probability >= u.
	lo, hi := 0, len(e.probs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.probs[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return e.values[0]
	}
	p0, p1 := e.probs[lo-1], e.probs[lo]
	v0, v1 := e.values[lo-1], e.values[lo]
	if p1 == p0 {
		return v1
	}
	frac := (u - p0) / (p1 - p0)
	return v0 + frac*(v1-v0)
}

// Mean returns the analytic mean of the piecewise-linear distribution,
// useful for computing offered load from a target utilization.
func (e *Empirical) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i := range e.values {
		p := e.probs[i]
		var v float64
		if i == 0 {
			v = e.values[0]
		} else {
			v = (e.values[i-1] + e.values[i]) / 2
		}
		mean += (p - prev) * v
		prev = p
	}
	return mean
}
